//! Physical planning and vectorized execution of bound SELECT plans.
//!
//! The planner mirrors DuckDB's behaviour the paper relies on:
//! single-relation predicates are pushed below joins, equality conjuncts
//! become hash joins, and — the §4.3 mechanism — a filter of the shape
//! `column && constant` over an indexed column is replaced by an index
//! scan on the registered TRTREE index.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use mduck_sql::ast::BinaryOp;
use mduck_sql::eval::{eval, NoSubqueries, OuterStack, SubqueryExec};
use mduck_sql::{
    split_conjuncts, BoundExpr, BoundFrom, BoundSelect, ExecGuard, LogicalType, Registry,
    SortKey, SqlError, SqlResult, Value,
};

use crate::catalog::DbCatalog;
use crate::column::{Chunks, ColumnData, DataChunk, VECTOR_SIZE};
use crate::expr::{eval_vector, filter_chunk};
use crate::parallel::{contiguous_ranges, morsel_map, ParStats, MIN_PARALLEL_MORSELS};

/// Shared execution context for one statement.
pub struct EngineCtx<'a> {
    pub catalog: &'a DbCatalog,
    pub registry: &'a Registry,
    /// Per-statement resource guard: cancellation, deadline, row budget.
    /// Charged at chunk boundaries throughout the executor.
    pub guard: &'a ExecGuard,
    /// Materialized CTEs by global index.
    pub ctes: RefCell<HashMap<usize, Arc<Chunks>>>,
    /// Statistics: rows read by scans (EXPLAIN ANALYZE-style diagnostics).
    pub rows_scanned: RefCell<usize>,
    /// True when the optimizer injected at least one index scan.
    pub used_index_scan: RefCell<bool>,
    /// Per-operator/per-stage actuals, populated only under
    /// `EXPLAIN ANALYZE` (see [`EngineCtx::enable_profiling`]).
    pub profile: Option<Profile>,
    /// Worker threads for morsel-driven execution (1 = serial). Set from
    /// the database's `PRAGMA threads` / config knob.
    pub threads: usize,
    /// Live completion estimate for this statement, fed at morsel/chunk
    /// granularity; `None` on paths nobody polls (subordinate executions).
    pub progress: Option<Arc<mduck_obs::QueryProgress>>,
}

/// Actuals recorded for one physical operator across all its executions
/// (a correlated subquery re-runs its operators once per outer row).
#[derive(Debug, Default, Clone)]
pub struct OpProf {
    pub execs: u64,
    /// Inclusive wall time (children's time subtracted at render time).
    pub elapsed_ns: u64,
    pub rows_out: u64,
    pub chunks_out: u64,
    /// Rows read from storage by this operator (scans only).
    pub rows_scanned: u64,
    /// Bytes of buffers this operator materialized (charged against the
    /// statement's memory guard as they were allocated).
    pub mem_bytes: u64,
}

/// Actuals for one post-join stage (aggregate, projection, order_by, ...)
/// of one [`BoundSelect`].
#[derive(Debug, Default, Clone)]
pub struct StageProf {
    pub execs: u64,
    pub elapsed_ns: u64,
    pub rows_out: u64,
    /// Bytes of buffers this stage materialized (hash-agg group tables,
    /// sort keys).
    pub mem_bytes: u64,
}

/// Actuals of one *parallel* stage, aggregated across workers and (for
/// re-executed subplans) across executions.
#[derive(Debug, Default, Clone)]
pub struct ParProf {
    pub execs: u64,
    /// Maximum worker count observed.
    pub workers: u64,
    /// Summed per-worker busy time across all executions.
    pub busy_ns: u64,
    /// Busy time of the slowest worker of any execution.
    pub max_worker_ns: u64,
    /// Total morsels dispatched.
    pub morsels: u64,
    /// Per-worker morsel counts of the most recent execution.
    pub per_worker: Vec<u64>,
}

/// Profiling sink for `EXPLAIN ANALYZE`. Operators are keyed by node
/// address within the physical tree (stable for the duration of one
/// execution), stages by the owning plan's address plus stage name;
/// parallel actuals share the stage keying (operator address + stage
/// name for tree nodes).
#[derive(Debug, Default)]
pub struct Profile {
    pub ops: RefCell<HashMap<usize, OpProf>>,
    pub stages: RefCell<HashMap<(usize, &'static str), StageProf>>,
    pub parallel: RefCell<HashMap<(usize, &'static str), ParProf>>,
}

/// The opaque profiling key of a physical operator node.
pub fn op_key(op: &PhysOp) -> usize {
    op as *const PhysOp as usize
}

/// The opaque profiling key of a plan's post-join stages.
pub fn plan_key(plan: &BoundSelect) -> usize {
    plan as *const BoundSelect as usize
}

impl<'a> EngineCtx<'a> {
    pub fn new(catalog: &'a DbCatalog, registry: &'a Registry, guard: &'a ExecGuard) -> Self {
        EngineCtx {
            catalog,
            registry,
            guard,
            ctes: RefCell::new(HashMap::new()),
            rows_scanned: RefCell::new(0),
            used_index_scan: RefCell::new(false),
            profile: None,
            threads: 1,
            progress: None,
        }
    }

    /// Builder: set the worker-thread count for this statement.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Builder: attach a live-progress handle for this statement.
    pub fn with_progress(mut self, progress: Option<Arc<mduck_obs::QueryProgress>>) -> Self {
        self.progress = progress;
        self
    }

    /// True when a stage may fan out to the worker pool: more than one
    /// thread configured and no correlated outer context (workers use
    /// [`NoSubqueries`] and cannot see outer rows; per-stage gating
    /// additionally requires the expressions involved to be non-complex).
    pub fn parallel_ok(&self, outer: &OuterStack<'_>) -> bool {
        self.threads > 1 && outer.is_empty()
    }

    /// Turn on per-operator/per-stage actuals (`EXPLAIN ANALYZE`).
    pub fn enable_profiling(&mut self) {
        self.profile = Some(Profile::default());
    }

    fn record_stage(&self, plan: &BoundSelect, name: &'static str, start: Instant, rows: usize) {
        if let Some(p) = &self.profile {
            let mut stages = p.stages.borrow_mut();
            let e = stages.entry((plan_key(plan), name)).or_default();
            e.execs += 1;
            e.elapsed_ns += start.elapsed().as_nanos() as u64;
            e.rows_out += rows as u64;
        }
    }

    /// Record the worker-pool actuals of one parallel stage execution
    /// under `(plan-or-op key, stage name)`.
    fn record_parallel(&self, key: usize, name: &'static str, stats: &ParStats) {
        if let Some(p) = &self.profile {
            let mut par = p.parallel.borrow_mut();
            let e = par.entry((key, name)).or_default();
            e.execs += 1;
            e.workers = e.workers.max(stats.workers as u64);
            e.busy_ns += stats.busy_ns;
            e.max_worker_ns = e.max_worker_ns.max(stats.max_worker_ns);
            e.morsels += stats.morsels();
            e.per_worker = stats.morsels_per_worker.clone();
        }
    }

    /// Charge materialized bytes to the statement's memory guard and
    /// attribute them to an operator node (under profiling). Fails when
    /// the charge pushes the statement over `PRAGMA memory_limit`.
    fn charge_op_mem(&self, key: usize, bytes: u64) -> SqlResult<()> {
        if bytes == 0 {
            return Ok(());
        }
        let check = self.guard.charge_mem(bytes);
        self.attribute_op_mem(key, bytes);
        check
    }

    /// Attribute bytes to an operator node *without* charging the guard —
    /// used by coordinators for buffers morsel workers already charged
    /// (workers share the guard but cannot touch the `RefCell` profile).
    fn attribute_op_mem(&self, key: usize, bytes: u64) {
        if bytes == 0 {
            return;
        }
        if let Some(p) = &self.profile {
            p.ops.borrow_mut().entry(key).or_default().mem_bytes += bytes;
        }
    }

    /// Charge + attribute for a post-join stage (aggregate, order_by).
    fn charge_stage_mem(&self, plan: &BoundSelect, name: &'static str, bytes: u64) -> SqlResult<()> {
        if bytes == 0 {
            return Ok(());
        }
        let check = self.guard.charge_mem(bytes);
        self.attribute_stage_mem(plan, name, bytes);
        check
    }

    /// Profile-only attribution for worker-charged stage buffers.
    fn attribute_stage_mem(&self, plan: &BoundSelect, name: &'static str, bytes: u64) {
        if bytes == 0 {
            return;
        }
        if let Some(p) = &self.profile {
            p.stages.borrow_mut().entry((plan_key(plan), name)).or_default().mem_bytes += bytes;
        }
    }
}

struct PlanExecutor<'a, 'b> {
    ctx: &'b EngineCtx<'a>,
}

impl SubqueryExec for PlanExecutor<'_, '_> {
    fn execute(&self, plan: &BoundSelect, outer: &OuterStack<'_>) -> SqlResult<Vec<Vec<Value>>> {
        // Correlated subqueries re-enter the executor once per outer row;
        // the guard bounds both the depth and (via tick) the wall clock.
        self.ctx.guard.enter_subquery()?;
        let r = execute_select(self.ctx, plan, outer);
        self.ctx.guard.exit_subquery();
        r
    }
}

// ------------------------------------------------------------ physical plan

/// The join/scan tree (everything above it — aggregation, projection,
/// ordering — is driven directly from the [`BoundSelect`]).
#[derive(Debug, Clone)]
pub enum PhysOp {
    SeqScan {
        table: String,
    },
    /// §4.3 index-scan injection: `column <op> constant` answered by the
    /// index named; `fallback` re-applies the original predicate if the
    /// index declines at run time.
    IndexScan {
        table: String,
        index: String,
        op: String,
        constant: Value,
        fallback: BoundExpr,
    },
    CteScan {
        index: usize,
        name: String,
    },
    SubqueryScan {
        plan: Box<BoundSelect>,
        types: Vec<LogicalType>,
    },
    Series {
        args: Vec<BoundExpr>,
    },
    /// `mduck_spans()`: snapshot of the tracing-span ring buffer.
    SpansScan {
        types: Vec<LogicalType>,
    },
    /// `mduck_progress()`: snapshot of the live-progress registry.
    ProgressScan {
        types: Vec<LogicalType>,
    },
    /// `mduck_query_log()`: snapshot of the query-log history.
    QueryLogScan {
        types: Vec<LogicalType>,
    },
    Filter {
        pred: BoundExpr,
        child: Box<PhysOp>,
    },
    HashJoin {
        left: Box<PhysOp>,
        right: Box<PhysOp>,
        left_keys: Vec<BoundExpr>,
        /// Remapped to the right child's local column space.
        right_keys: Vec<BoundExpr>,
    },
    CrossJoin {
        left: Box<PhysOp>,
        right: Box<PhysOp>,
    },
}

/// Build the physical join tree for a plan's FROM + WHERE.
pub fn plan_joins(ctx: &EngineCtx<'_>, plan: &BoundSelect) -> SqlResult<(PhysOp, Vec<BoundExpr>)> {
    if plan.from.is_empty() {
        return Err(SqlError::execution("cannot plan joins for a FROM-less select"));
    }
    // Column offsets of each FROM item in the global input schema.
    let mut offsets = Vec::with_capacity(plan.from.len());
    let mut acc = 0usize;
    for f in &plan.from {
        offsets.push(acc);
        acc += f.schema().len();
    }
    let widths: Vec<usize> = plan.from.iter().map(|f| f.schema().len()).collect();

    let mut conjuncts = Vec::new();
    if let Some(f) = &plan.filter {
        split_conjuncts(f, &mut conjuncts);
    }
    let mut used = vec![false; conjuncts.len()];

    // Base relations with pushed-down filters / injected index scans.
    let mut relations: Vec<PhysOp> = Vec::new();
    for (ri, f) in plan.from.iter().enumerate() {
        let (lo, hi) = (offsets[ri], offsets[ri] + widths[ri]);
        let mut base = base_relation(f)?;
        // Gather this relation's own conjuncts (no subqueries, columns all
        // local).
        let mut local: Vec<(usize, BoundExpr)> = Vec::new();
        for (ci, c) in conjuncts.iter().enumerate() {
            if used[ci] || c.is_complex() {
                continue;
            }
            let mut cols = Vec::new();
            c.collect_columns(&mut cols);
            if !cols.is_empty() && cols.iter().all(|&x| x >= lo && x < hi) {
                local.push((ci, remap_columns(c, lo)));
            }
        }
        // Try index-scan injection on base tables.
        if let BoundFrom::Table { name, .. } = f {
            let mut injected_at: Option<usize> = None;
            for (pos, (_, c)) in local.iter().enumerate() {
                if let Some(op) = match_index_pattern(ctx, name, c)? {
                    base = op;
                    injected_at = Some(pos);
                    *ctx.used_index_scan.borrow_mut() = true;
                    break;
                }
            }
            if let Some(pos) = injected_at {
                let (ci, _) = local.remove(pos);
                used[ci] = true;
            }
        }
        for (ci, c) in local {
            used[ci] = true;
            base = PhysOp::Filter { pred: c, child: Box::new(base) };
        }
        relations.push(base);
    }

    // Left-deep joins in FROM order, picking up equality keys.
    let mut tree = relations.remove(0);
    let mut width = widths[0];
    for (ri, rel) in relations.into_iter().enumerate() {
        let ri = ri + 1;
        let (rlo, rhi) = (offsets[ri], offsets[ri] + widths[ri]);
        let mut lkeys = Vec::new();
        let mut rkeys = Vec::new();
        for (ci, c) in conjuncts.iter().enumerate() {
            if used[ci] || c.is_complex() {
                continue;
            }
            if let BoundExpr::Compare { op: BinaryOp::Eq, left, right } = c {
                let (mut lc, mut rc) = (Vec::new(), Vec::new());
                left.collect_columns(&mut lc);
                right.collect_columns(&mut rc);
                let in_left = |cols: &[usize]| !cols.is_empty() && cols.iter().all(|&x| x < width);
                let in_right =
                    |cols: &[usize]| !cols.is_empty() && cols.iter().all(|&x| x >= rlo && x < rhi);
                if in_left(&lc) && in_right(&rc) {
                    lkeys.push((**left).clone());
                    rkeys.push(remap_columns(right, rlo));
                    used[ci] = true;
                } else if in_right(&lc) && in_left(&rc) {
                    lkeys.push((**right).clone());
                    rkeys.push(remap_columns(left, rlo));
                    used[ci] = true;
                }
            }
        }
        tree = if lkeys.is_empty() {
            PhysOp::CrossJoin { left: Box::new(tree), right: Box::new(rel) }
        } else {
            PhysOp::HashJoin {
                left: Box::new(tree),
                right: Box::new(rel),
                left_keys: lkeys,
                right_keys: rkeys,
            }
        };
        width = rhi;
        // Apply every remaining simple conjunct that is now fully covered.
        for (ci, c) in conjuncts.iter().enumerate() {
            if used[ci] || c.is_complex() {
                continue;
            }
            let mut cols = Vec::new();
            c.collect_columns(&mut cols);
            if cols.iter().all(|&x| x < width) {
                used[ci] = true;
                tree = PhysOp::Filter { pred: c.clone(), child: Box::new(tree) };
            }
        }
    }
    // Anything left (complex predicates with subqueries) runs on top.
    let remaining: Vec<BoundExpr> = conjuncts
        .into_iter()
        .zip(used)
        .filter(|(_, u)| !u)
        .map(|(c, _)| c)
        .collect();
    Ok((tree, remaining))
}

fn base_relation(f: &BoundFrom) -> SqlResult<PhysOp> {
    Ok(match f {
        BoundFrom::Table { name, .. } => PhysOp::SeqScan { table: name.clone() },
        BoundFrom::Cte { index, alias, .. } => {
            PhysOp::CteScan { index: *index, name: alias.clone() }
        }
        BoundFrom::Subquery { plan, schema, .. } => PhysOp::SubqueryScan {
            plan: plan.clone(),
            types: schema.fields.iter().map(|fl| fl.ty.clone()).collect(),
        },
        BoundFrom::Series { args, .. } => PhysOp::Series { args: args.clone() },
        BoundFrom::Spans { schema, .. } => PhysOp::SpansScan {
            types: schema.fields.iter().map(|fl| fl.ty.clone()).collect(),
        },
        BoundFrom::Progress { schema, .. } => PhysOp::ProgressScan {
            types: schema.fields.iter().map(|fl| fl.ty.clone()).collect(),
        },
        BoundFrom::QueryLog { schema, .. } => PhysOp::QueryLogScan {
            types: schema.fields.iter().map(|fl| fl.ty.clone()).collect(),
        },
    })
}

/// Stable snake_case operator name (span labels, bench breakdowns).
pub fn op_name(op: &PhysOp) -> &'static str {
    match op {
        PhysOp::SeqScan { .. } => "seq_scan",
        PhysOp::IndexScan { .. } => "index_scan",
        PhysOp::CteScan { .. } => "cte_scan",
        PhysOp::SubqueryScan { .. } => "subquery_scan",
        PhysOp::Series { .. } => "generate_series",
        PhysOp::SpansScan { .. } => "spans_scan",
        PhysOp::ProgressScan { .. } => "progress_scan",
        PhysOp::QueryLogScan { .. } => "query_log_scan",
        PhysOp::Filter { .. } => "filter",
        PhysOp::HashJoin { .. } => "hash_join",
        PhysOp::CrossJoin { .. } => "cross_product",
    }
}

/// Recognize `col <op> constant` (or commuted) over an indexed column of
/// `table`. Returns an [`PhysOp::IndexScan`] when an index is willing.
fn match_index_pattern(
    ctx: &EngineCtx<'_>,
    table: &str,
    pred: &BoundExpr,
) -> SqlResult<Option<PhysOp>> {
    let BoundExpr::Call { name: op, args, .. } = pred else {
        return Ok(None);
    };
    if args.len() != 2 {
        return Ok(None);
    }
    // `&&` commutes; other operators are used as written.
    let (col, constant) = match (&args[0], &args[1]) {
        (BoundExpr::ColumnRef { index, .. }, BoundExpr::Literal(v)) => (*index, v.clone()),
        (BoundExpr::Literal(v), BoundExpr::ColumnRef { index, .. }) if op == "&&" => {
            (*index, v.clone())
        }
        _ => return Ok(None),
    };
    let t = ctx.catalog.get(table)?;
    let t = t.read();
    for idx in &t.indexes {
        if idx.column() == col {
            return Ok(Some(PhysOp::IndexScan {
                table: table.to_string(),
                index: idx.name().to_string(),
                op: op.clone(),
                constant,
                fallback: pred.clone(),
            }));
        }
    }
    Ok(None)
}

/// Rewrite column indices down by `offset` (push a predicate below a join).
fn remap_columns(e: &BoundExpr, offset: usize) -> BoundExpr {
    use BoundExpr::*;
    match e {
        ColumnRef { index, ty } => ColumnRef { index: index - offset, ty: ty.clone() },
        Call { name, func, args, ty, strict } => Call {
            name: name.clone(),
            func: func.clone(),
            args: args.iter().map(|a| remap_columns(a, offset)).collect(),
            ty: ty.clone(),
            strict: *strict,
        },
        Compare { op, left, right } => Compare {
            op: *op,
            left: Box::new(remap_columns(left, offset)),
            right: Box::new(remap_columns(right, offset)),
        },
        Arith { op, left, right, ty } => Arith {
            op: *op,
            left: Box::new(remap_columns(left, offset)),
            right: Box::new(remap_columns(right, offset)),
            ty: ty.clone(),
        },
        And(es) => And(es.iter().map(|x| remap_columns(x, offset)).collect()),
        Or(es) => Or(es.iter().map(|x| remap_columns(x, offset)).collect()),
        Not(x) => Not(Box::new(remap_columns(x, offset))),
        IsNull { expr, negated } => {
            IsNull { expr: Box::new(remap_columns(expr, offset)), negated: *negated }
        }
        InList { expr, list, negated } => InList {
            expr: Box::new(remap_columns(expr, offset)),
            list: list.iter().map(|x| remap_columns(x, offset)).collect(),
            negated: *negated,
        },
        Case { operand, branches, else_expr, ty } => Case {
            operand: operand.as_ref().map(|o| Box::new(remap_columns(o, offset))),
            branches: branches
                .iter()
                .map(|(c, v)| (remap_columns(c, offset), remap_columns(v, offset)))
                .collect(),
            else_expr: else_expr.as_ref().map(|x| Box::new(remap_columns(x, offset))),
            ty: ty.clone(),
        },
        other => other.clone(),
    }
}

// ------------------------------------------------------------ execution

/// Execute a physical tree, producing chunks.
///
/// This is a thin observability wrapper around [`run_op`]: it bumps the
/// global chunk counter and, under `EXPLAIN ANALYZE`, records per-node
/// actuals (inclusive wall time, output rows/chunks) and a tracing span.
pub fn execute_op(
    ctx: &EngineCtx<'_>,
    op: &PhysOp,
    outer: &OuterStack<'_>,
) -> SqlResult<Chunks> {
    // Operator spans only under profiling: a correlated subquery re-runs
    // its tree per outer row and would otherwise flood the span ring.
    let _span = ctx
        .profile
        .as_ref()
        .map(|_| mduck_obs::span(format!("vecdb.op.{}", op_name(op))));
    let start = Instant::now();
    let result = run_op(ctx, op, outer);
    if let Ok(chunks) = &result {
        mduck_obs::metrics().chunks_produced.inc(chunks.chunks.len() as u64);
        if let Some(p) = &ctx.profile {
            let mut ops = p.ops.borrow_mut();
            let e = ops.entry(op_key(op)).or_default();
            e.execs += 1;
            e.elapsed_ns += start.elapsed().as_nanos() as u64;
            e.rows_out += chunks.row_count() as u64;
            e.chunks_out += chunks.chunks.len() as u64;
        }
    }
    result
}

/// Charge `n` scanned rows to the guard, the statement statistic, the
/// global metric, and (under profiling) the scan node itself.
fn note_scanned(ctx: &EngineCtx<'_>, op: &PhysOp, n: usize) -> SqlResult<()> {
    ctx.guard.check_rows(n)?;
    ctx.guard.note_scanned(n);
    *ctx.rows_scanned.borrow_mut() += n;
    mduck_obs::metrics().rows_scanned.inc(n as u64);
    if let Some(p) = &ctx.profile {
        p.ops.borrow_mut().entry(op_key(op)).or_default().rows_scanned += n as u64;
    }
    Ok(())
}

fn run_op(
    ctx: &EngineCtx<'_>,
    op: &PhysOp,
    outer: &OuterStack<'_>,
) -> SqlResult<Chunks> {
    let exec = PlanExecutor { ctx };
    match op {
        PhysOp::SeqScan { table } => {
            let t = ctx.catalog.get(table)?;
            let t = t.read();
            mduck_obs::metrics().full_scans.inc(1);
            note_scanned(ctx, op, t.row_count())?;
            let n = t.chunk_count();
            if let Some(pr) = &ctx.progress {
                pr.add_total(n as u64);
            }
            if ctx.parallel_ok(outer) && n >= MIN_PARALLEL_MORSELS {
                // Parallel materialization: each morsel is one chunk range
                // of the column store, claimed dynamically and reassembled
                // in row order. Workers charge the shared memory guard as
                // they materialize, so `PRAGMA memory_limit` trips
                // mid-flight; the coordinator attributes the bytes to the
                // node afterwards (the profile is not thread-safe).
                let guard = ctx.guard;
                let table = &*t;
                let progress = ctx.progress.as_deref();
                let (chunks, stats) = morsel_map(ctx.threads, n, |i| {
                    guard.tick()?;
                    let chunk = table.chunk_at(i);
                    let bytes = chunk.approx_bytes();
                    guard.charge_mem(bytes)?;
                    if let Some(pr) = progress {
                        pr.add_done(1);
                    }
                    Ok((chunk, bytes))
                })?;
                if let Some(stats) = &stats {
                    ctx.record_parallel(op_key(op), "scan", stats);
                }
                let mut out = Chunks::default();
                let mut bytes = 0u64;
                for (chunk, b) in chunks {
                    bytes += b;
                    out.chunks.push(chunk);
                }
                ctx.attribute_op_mem(op_key(op), bytes);
                Ok(out)
            } else {
                let out = t.scan_chunks();
                if let Some(pr) = &ctx.progress {
                    pr.add_done(n as u64);
                }
                ctx.charge_op_mem(op_key(op), out.approx_bytes())?;
                Ok(out)
            }
        }
        PhysOp::IndexScan { table, index: _, op: iop, constant, fallback } => {
            let t = ctx.catalog.get(table)?;
            let t = t.read();
            let mut hit = None;
            for idx in &t.indexes {
                if let Some(rows) = idx.try_scan(iop, constant)? {
                    hit = Some(rows);
                    break;
                }
            }
            match hit {
                Some(mut rows) => {
                    rows.sort_unstable();
                    mduck_obs::metrics().index_probes.inc(1);
                    note_scanned(ctx, op, rows.len())?;
                    let out = t.gather_rows(&rows);
                    ctx.charge_op_mem(op_key(op), out.approx_bytes())?;
                    Ok(out)
                }
                None => {
                    // Index declined: sequential scan + original filter.
                    mduck_obs::metrics().full_scans.inc(1);
                    note_scanned(ctx, op, t.row_count())?;
                    let chunks = t.scan_chunks();
                    ctx.charge_op_mem(op_key(op), chunks.approx_bytes())?;
                    filter_chunks(ctx, chunks, fallback, outer, &exec, op_key(op))
                }
            }
        }
        PhysOp::CteScan { index, .. } => {
            let ctes = ctx.ctes.borrow();
            let mat = ctes
                .get(index)
                .ok_or_else(|| SqlError::execution(format!("CTE {index} not materialized")))?;
            let out = (**mat).clone();
            drop(ctes);
            ctx.charge_op_mem(op_key(op), out.approx_bytes())?;
            Ok(out)
        }
        PhysOp::SubqueryScan { plan, types } => {
            let rows = execute_select(ctx, plan, outer)?;
            let out = Chunks::from_rows(types, &rows)?;
            ctx.charge_op_mem(op_key(op), out.approx_bytes())?;
            Ok(out)
        }
        PhysOp::Series { args } => {
            let vals: SqlResult<Vec<Value>> =
                args.iter().map(|a| eval(a, &[], outer, &exec)).collect();
            let vals = vals?;
            let Some(first) = vals.first() else {
                return Err(SqlError::execution("generate_series requires arguments"));
            };
            let start = first.as_int()?;
            let stop = if vals.len() > 1 { vals[1].as_int()? } else { start };
            let step = if vals.len() > 2 { vals[2].as_int()? } else { 1 };
            if step == 0 {
                return Err(SqlError::execution("generate_series step must be nonzero"));
            }
            let mut out = Chunks::default();
            let mut chunk = DataChunk::new(&[LogicalType::Int]);
            let mut v = start;
            loop {
                let more = (step > 0 && v <= stop) || (step < 0 && v >= stop);
                if !more {
                    break;
                }
                chunk.push_row(&[Value::Int(v)])?;
                if chunk.len >= VECTOR_SIZE {
                    ctx.guard.check_rows(chunk.len)?;
                    out.chunks
                        .push(std::mem::replace(&mut chunk, DataChunk::new(&[LogicalType::Int])));
                }
                // `stop` may be i64::MAX; stepping past it must not overflow.
                v = match v.checked_add(step) {
                    Some(next) => next,
                    None => break,
                };
            }
            if chunk.len > 0 {
                ctx.guard.check_rows(chunk.len)?;
                out.chunks.push(chunk);
            }
            ctx.charge_op_mem(op_key(op), out.approx_bytes())?;
            Ok(out)
        }
        PhysOp::SpansScan { types } => {
            let rows = mduck_sql::introspect::span_rows();
            ctx.guard.check_rows(rows.len())?;
            let out = Chunks::from_rows(types, &rows)?;
            ctx.charge_op_mem(op_key(op), out.approx_bytes())?;
            Ok(out)
        }
        PhysOp::ProgressScan { types } => {
            let rows = mduck_sql::introspect::progress_rows();
            ctx.guard.check_rows(rows.len())?;
            let out = Chunks::from_rows(types, &rows)?;
            ctx.charge_op_mem(op_key(op), out.approx_bytes())?;
            Ok(out)
        }
        PhysOp::QueryLogScan { types } => {
            let rows = mduck_sql::introspect::query_log_rows();
            ctx.guard.check_rows(rows.len())?;
            let out = Chunks::from_rows(types, &rows)?;
            ctx.charge_op_mem(op_key(op), out.approx_bytes())?;
            Ok(out)
        }
        PhysOp::Filter { pred, child } => {
            let input = execute_op(ctx, child, outer)?;
            filter_chunks(ctx, input, pred, outer, &exec, op_key(op))
        }
        PhysOp::CrossJoin { left, right } => {
            let l = execute_op(ctx, left, outer)?;
            let r = execute_op(ctx, right, outer)?;
            cross_join(ctx, &l, &r, op_key(op))
        }
        PhysOp::HashJoin { left, right, left_keys, right_keys } => {
            let l = execute_op(ctx, left, outer)?;
            let r = execute_op(ctx, right, outer)?;
            hash_join(ctx, &l, &r, left_keys, right_keys, outer, &exec, op_key(op))
        }
    }
}

/// Apply `pred` across all chunks. `key` names the owning operator or
/// plan for parallel actuals. Fans out to the morsel pool when the
/// statement allows it and the predicate carries no subqueries (workers
/// evaluate with [`NoSubqueries`] and an empty outer stack).
fn filter_chunks(
    ctx: &EngineCtx<'_>,
    input: Chunks,
    pred: &BoundExpr,
    outer: &OuterStack<'_>,
    exec: &dyn SubqueryExec,
    key: usize,
) -> SqlResult<Chunks> {
    if let Some(pr) = &ctx.progress {
        pr.add_total(input.chunks.len() as u64);
    }
    if ctx.parallel_ok(outer)
        && !pred.is_complex()
        && input.chunks.len() >= MIN_PARALLEL_MORSELS
    {
        let guard = ctx.guard;
        let chunks = &input.chunks;
        let progress = ctx.progress.as_deref();
        let (results, stats) = morsel_map(ctx.threads, chunks.len(), |i| {
            guard.tick()?;
            let chunk = &chunks[i];
            let sel = filter_chunk(pred, chunk, &OuterStack::EMPTY, &NoSubqueries)?;
            let dropped = (chunk.len - sel.len()) as u64;
            let kept = if sel.len() == chunk.len {
                Some(chunk.clone())
            } else if sel.is_empty() {
                None
            } else {
                Some(chunk.select(&sel))
            };
            // The kept copy is a fresh buffer: charge the shared guard
            // from the worker so the memory limit trips mid-stage.
            let bytes = kept.as_ref().map_or(0, DataChunk::approx_bytes);
            guard.charge_mem(bytes)?;
            if let Some(pr) = progress {
                pr.add_done(1);
            }
            Ok((kept, dropped, bytes))
        })?;
        if let Some(stats) = &stats {
            ctx.record_parallel(key, "filter", stats);
        }
        // Per-worker counters are merged by the coordinator and flushed
        // into the global registry exactly once per stage.
        let mut counters = mduck_obs::WorkerCounters::default();
        let mut out = Chunks::default();
        let mut bytes = 0u64;
        for (kept, dropped, b) in results {
            counters.rows_filtered += dropped;
            bytes += b;
            if let Some(c) = kept {
                out.chunks.push(c);
            }
        }
        counters.flush();
        ctx.attribute_op_mem(key, bytes);
        return Ok(out);
    }
    let mut out = Chunks::default();
    let mut dropped = 0u64;
    for chunk in &input.chunks {
        ctx.guard.tick()?;
        let sel = filter_chunk(pred, chunk, outer, exec)?;
        dropped += (chunk.len - sel.len()) as u64;
        if sel.len() == chunk.len {
            out.chunks.push(chunk.clone());
        } else if !sel.is_empty() {
            out.chunks.push(chunk.select(&sel));
        }
        if let Some(pr) = &ctx.progress {
            pr.add_done(1);
        }
    }
    ctx.charge_op_mem(key, out.approx_bytes())?;
    mduck_obs::metrics().rows_filtered.inc(dropped);
    Ok(out)
}

/// Flatten chunks into one big chunk (join build sides).
fn flatten(chunks: &Chunks, types: Vec<LogicalType>) -> DataChunk {
    let mut cols: Vec<ColumnData> = types.iter().map(ColumnData::new).collect();
    for chunk in &chunks.chunks {
        for (dst, src) in cols.iter_mut().zip(&chunk.columns) {
            dst.extend_from(src, 0, chunk.len);
        }
    }
    DataChunk::from_columns(cols)
}

fn chunk_types(chunks: &Chunks) -> Vec<LogicalType> {
    chunks
        .chunks
        .first()
        .map(|c| c.columns.iter().map(|col| col.ty.clone()).collect())
        .unwrap_or_default()
}

fn cross_join(ctx: &EngineCtx<'_>, l: &Chunks, r: &Chunks, key: usize) -> SqlResult<Chunks> {
    let rtypes = chunk_types(r);
    let rflat = flatten(r, rtypes);
    // The flattened build side is a fresh buffer; output chunks are
    // charged as they are produced so a runaway product trips the memory
    // limit (or the row budget, whichever is tighter) mid-flight.
    ctx.charge_op_mem(key, rflat.approx_bytes())?;
    let mut out = Chunks::default();
    for lchunk in &l.chunks {
        // For each left row, repeat it against every right row. The guard
        // is charged per output chunk.
        let mut lsel = Vec::new();
        let mut rsel = Vec::new();
        for li in 0..lchunk.len {
            for ri in 0..rflat.len {
                lsel.push(li);
                rsel.push(ri);
                if lsel.len() >= VECTOR_SIZE {
                    ctx.guard.check_rows(lsel.len())?;
                    let chunk = combine(lchunk, &lsel, &rflat, &rsel);
                    ctx.charge_op_mem(key, chunk.approx_bytes())?;
                    out.chunks.push(chunk);
                    lsel.clear();
                    rsel.clear();
                }
            }
        }
        if !lsel.is_empty() {
            ctx.guard.check_rows(lsel.len())?;
            let chunk = combine(lchunk, &lsel, &rflat, &rsel);
            ctx.charge_op_mem(key, chunk.approx_bytes())?;
            out.chunks.push(chunk);
        }
    }
    mduck_obs::metrics().rows_joined.inc(out.row_count() as u64);
    Ok(out)
}

fn combine(l: &DataChunk, lsel: &[usize], r: &DataChunk, rsel: &[usize]) -> DataChunk {
    let mut cols = Vec::with_capacity(l.columns.len() + r.columns.len());
    for c in &l.columns {
        cols.push(c.gather(lsel));
    }
    for c in &r.columns {
        cols.push(c.gather(rsel));
    }
    DataChunk::from_columns(cols)
}

#[allow(clippy::too_many_arguments)]
fn hash_join(
    ctx: &EngineCtx<'_>,
    l: &Chunks,
    r: &Chunks,
    left_keys: &[BoundExpr],
    right_keys: &[BoundExpr],
    outer: &OuterStack<'_>,
    exec: &dyn SubqueryExec,
    key_op: usize,
) -> SqlResult<Chunks> {
    // Build on the right side. The flattened build chunk plus a rough
    // per-entry estimate for the hash table itself are charged up front —
    // the build side is the operator's dominant allocation.
    let rtypes = chunk_types(r);
    let rflat = flatten(r, rtypes);
    ctx.charge_op_mem(key_op, rflat.approx_bytes() + rflat.len as u64 * 48)?;
    let mut table: HashMap<Vec<u8>, Vec<usize>> = HashMap::with_capacity(rflat.len);
    if rflat.len > 0 {
        let key_cols: SqlResult<Vec<ColumnData>> = right_keys
            .iter()
            .map(|k| eval_vector(k, &rflat, outer, exec))
            .collect();
        let key_cols = key_cols?;
        let mut key = Vec::new();
        for i in 0..rflat.len {
            key.clear();
            let mut has_null = false;
            for kc in &key_cols {
                let v = kc.get(i);
                if v.is_null() {
                    has_null = true;
                    break;
                }
                v.hash_key(&mut key);
            }
            if !has_null {
                table.entry(key.clone()).or_default().push(i);
            }
        }
    }
    let mut out = Chunks::default();
    for lchunk in &l.chunks {
        if lchunk.len == 0 {
            continue;
        }
        let key_cols: SqlResult<Vec<ColumnData>> = left_keys
            .iter()
            .map(|k| eval_vector(k, lchunk, outer, exec))
            .collect();
        let key_cols = key_cols?;
        let mut lsel = Vec::new();
        let mut rsel = Vec::new();
        let mut key = Vec::new();
        for i in 0..lchunk.len {
            key.clear();
            let mut has_null = false;
            for kc in &key_cols {
                let v = kc.get(i);
                if v.is_null() {
                    has_null = true;
                    break;
                }
                v.hash_key(&mut key);
            }
            if has_null {
                continue;
            }
            if let Some(matches) = table.get(&key) {
                for &ri in matches {
                    lsel.push(i);
                    rsel.push(ri);
                    if lsel.len() >= VECTOR_SIZE {
                        ctx.guard.check_rows(lsel.len())?;
                        let chunk = combine(lchunk, &lsel, &rflat, &rsel);
                        ctx.charge_op_mem(key_op, chunk.approx_bytes())?;
                        out.chunks.push(chunk);
                        lsel.clear();
                        rsel.clear();
                    }
                }
            }
        }
        if !lsel.is_empty() {
            ctx.guard.check_rows(lsel.len())?;
            let chunk = combine(lchunk, &lsel, &rflat, &rsel);
            ctx.charge_op_mem(key_op, chunk.approx_bytes())?;
            out.chunks.push(chunk);
        }
    }
    mduck_obs::metrics().rows_joined.inc(out.row_count() as u64);
    Ok(out)
}

// ------------------------------------------------------------ full select

/// Execute a bound SELECT to rows.
pub fn execute_select(
    ctx: &EngineCtx<'_>,
    plan: &BoundSelect,
    outer: &OuterStack<'_>,
) -> SqlResult<Vec<Vec<Value>>> {
    execute_select_inner(ctx, plan, None, outer)
}

/// Execute a bound SELECT against a pre-planned join tree. `EXPLAIN
/// ANALYZE` plans once up front so the profiled node keys match the tree
/// it renders afterwards.
pub fn execute_select_planned(
    ctx: &EngineCtx<'_>,
    plan: &BoundSelect,
    tree: &PhysOp,
    remaining: &[BoundExpr],
    outer: &OuterStack<'_>,
) -> SqlResult<Vec<Vec<Value>>> {
    execute_select_inner(ctx, plan, Some((tree, remaining)), outer)
}

fn execute_select_inner(
    ctx: &EngineCtx<'_>,
    plan: &BoundSelect,
    planned: Option<(&PhysOp, &[BoundExpr])>,
    outer: &OuterStack<'_>,
) -> SqlResult<Vec<Vec<Value>>> {
    let exec = PlanExecutor { ctx };

    // 1. Materialize this plan's CTEs (in order; later ones may reference
    //    earlier ones). Global indices were assigned by the binder in
    //    binding order starting at the count before this plan — recover
    //    them by running a counter alongside.
    materialize_ctes(ctx, plan, outer)?;

    // 2. Input relation.
    let run_tree = |tree: &PhysOp, remaining: &[BoundExpr]| -> SqlResult<Chunks> {
        let mut chunks = execute_op(ctx, tree, outer)?;
        if !remaining.is_empty() {
            let t = Instant::now();
            for pred in remaining {
                chunks = filter_chunks(ctx, chunks, pred, outer, &exec, plan_key(plan))?;
            }
            ctx.record_stage(plan, "filter", t, chunks.row_count());
        }
        Ok(chunks)
    };
    let input: Chunks = if plan.from.is_empty() {
        // SELECT without FROM: one empty row.
        let mut c = Chunks::default();
        c.chunks.push(DataChunk { columns: vec![], len: 1 });
        c
    } else {
        match planned {
            Some((tree, remaining)) => run_tree(tree, remaining)?,
            None => {
                let (tree, remaining) = plan_joins(ctx, plan)?;
                run_tree(&tree, &remaining)?
            }
        }
    };

    // 3. Aggregation → environment rows.
    let (env_rows, env_is_input) = if plan.aggregated {
        let t = Instant::now();
        let rows = aggregate(ctx, plan, &input, outer)?;
        ctx.record_stage(plan, "aggregate", t, rows.len());
        (rows, false)
    } else {
        (Vec::new(), true)
    };

    // 4 + 5. HAVING + projection.
    let proj_start = Instant::now();
    let mut out_rows: Vec<Vec<Value>> = Vec::new();
    let mut env_kept: Vec<Vec<Value>> = Vec::new();
    let needs_env = plan
        .order_by
        .iter()
        .any(|o| matches!(o.key, SortKey::Input(_)));
    if env_is_input {
        let simple = plan.projections.iter().all(|p| !p.is_complex());
        if ctx.parallel_ok(outer) && simple && input.chunks.len() >= MIN_PARALLEL_MORSELS {
            // Parallel projection: each worker projects whole chunks into
            // row vectors, reassembled in chunk order.
            let guard = ctx.guard;
            let chunks = &input.chunks;
            let projections = &plan.projections;
            let progress = ctx.progress.as_deref();
            if let Some(pr) = progress {
                pr.add_total(chunks.len() as u64);
            }
            let (parts, stats) = morsel_map(ctx.threads, chunks.len(), |ci| {
                let chunk = &chunks[ci];
                guard.check_rows(chunk.len)?;
                let proj_cols: SqlResult<Vec<ColumnData>> = projections
                    .iter()
                    .map(|p| eval_vector(p, chunk, &OuterStack::EMPTY, &NoSubqueries))
                    .collect();
                let proj_cols = proj_cols?;
                let mut rows: Vec<Vec<Value>> = Vec::with_capacity(chunk.len);
                let mut env: Vec<Vec<Value>> = Vec::new();
                for i in 0..chunk.len {
                    rows.push(proj_cols.iter().map(|c| c.get(i)).collect());
                    if needs_env {
                        env.push(chunk.row(i));
                    }
                }
                if let Some(pr) = progress {
                    pr.add_done(1);
                }
                Ok((rows, env))
            })?;
            if let Some(stats) = &stats {
                ctx.record_parallel(plan_key(plan), "projection", stats);
            }
            for (rows, env) in parts {
                out_rows.extend(rows);
                env_kept.extend(env);
            }
        } else {
            for chunk in &input.chunks {
                ctx.guard.check_rows(chunk.len)?;
                // Vectorized projection straight off the input chunks.
                let proj_cols: SqlResult<Vec<ColumnData>> = plan
                    .projections
                    .iter()
                    .map(|p| eval_vector(p, chunk, outer, &exec))
                    .collect();
                let proj_cols = proj_cols?;
                for i in 0..chunk.len {
                    out_rows.push(proj_cols.iter().map(|c| c.get(i)).collect());
                    if needs_env {
                        env_kept.push(chunk.row(i));
                    }
                }
            }
        }
    } else {
        for row in env_rows {
            if let Some(h) = &plan.having {
                if !matches!(eval(h, &row, outer, &exec)?, Value::Bool(true)) {
                    continue;
                }
            }
            let mut out = Vec::with_capacity(plan.projections.len());
            for p in &plan.projections {
                out.push(eval(p, &row, outer, &exec)?);
            }
            out_rows.push(out);
            if needs_env {
                env_kept.push(row);
            }
        }
    }
    ctx.record_stage(plan, "projection", proj_start, out_rows.len());

    // 6. DISTINCT.
    if plan.distinct {
        let t = Instant::now();
        let mut seen = std::collections::HashSet::new();
        let mut kept_out = Vec::with_capacity(out_rows.len());
        let mut kept_env = Vec::new();
        for (i, row) in out_rows.into_iter().enumerate() {
            let mut key = Vec::new();
            for v in &row {
                v.hash_key(&mut key);
            }
            if seen.insert(key) {
                if needs_env {
                    kept_env.push(env_kept[i].clone());
                }
                kept_out.push(row);
            }
        }
        out_rows = kept_out;
        env_kept = kept_env;
        ctx.record_stage(plan, "distinct", t, out_rows.len());
    }

    // 7. ORDER BY. Rows are *moved* into the keyed vector and moved back
    // out after sorting — the sort permutation is applied without cloning
    // a single output row.
    if !plan.order_by.is_empty() {
        let t = Instant::now();
        let mut keyed: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(out_rows.len());
        let mut key_bytes = 0u64;
        for (i, row) in out_rows.into_iter().enumerate() {
            let mut keys = Vec::with_capacity(plan.order_by.len());
            for o in &plan.order_by {
                let v = match &o.key {
                    SortKey::Output(j) => row[*j].clone(),
                    SortKey::Input(e) => eval(e, &env_kept[i], outer, &exec)?,
                };
                key_bytes += 32 + v.approx_bytes();
                keys.push(v);
            }
            keyed.push((keys, row));
        }
        // The sort key vector is the stage's own allocation (rows are
        // moved, not copied).
        ctx.charge_stage_mem(plan, "order_by", key_bytes)?;
        let mut cmp_err = None;
        keyed.sort_by(|(a, _), (b, _)| {
            mduck_sql::cmp_order_keys(a, b, &plan.order_by, &mut cmp_err)
        });
        if let Some(e) = cmp_err {
            return Err(e);
        }
        out_rows = keyed.into_iter().map(|(_, row)| row).collect();
        ctx.record_stage(plan, "order_by", t, out_rows.len());
    }

    // 8. OFFSET / LIMIT.
    if plan.offset.is_some() || plan.limit.is_some() {
        let t = Instant::now();
        if let Some(off) = plan.offset {
            let off = off as usize;
            out_rows = if off >= out_rows.len() { Vec::new() } else { out_rows.split_off(off) };
        }
        if let Some(lim) = plan.limit {
            out_rows.truncate(lim as usize);
        }
        ctx.record_stage(plan, "limit", t, out_rows.len());
    }
    Ok(out_rows)
}

/// Materialize the plan's CTEs into the shared context, in declaration
/// order (later CTEs may reference earlier ones).
fn materialize_ctes(
    ctx: &EngineCtx<'_>,
    plan: &BoundSelect,
    outer: &OuterStack<'_>,
) -> SqlResult<()> {
    for cte in &plan.ctes {
        let rows = execute_select(ctx, &cte.plan, outer)?;
        let types: Vec<LogicalType> = cte
            .plan
            .output_schema
            .fields
            .iter()
            .map(|f| f.ty.clone())
            .collect();
        let chunks = Chunks::from_rows(&types, &rows)?;
        ctx.ctes.borrow_mut().insert(cte.index, Arc::new(chunks));
    }
    Ok(())
}

/// One aggregation group, carrying its hash key so partial group sets can
/// be merged across workers.
struct Group {
    key_bytes: Vec<u8>,
    keys: Vec<Value>,
    states: Vec<Box<dyn mduck_sql::AggState>>,
    distinct_seen: Vec<Option<std::collections::HashSet<Vec<u8>>>>,
}

/// Groups in **first-seen order** — a hash index for lookup plus an
/// ordered vector. Serial and parallel aggregation both emit groups in
/// the order the first row of each group appears in the input, which is
/// what makes two-phase results byte-identical to serial ones.
#[derive(Default)]
struct GroupSet {
    index: HashMap<Vec<u8>, usize>,
    groups: Vec<Group>,
}

/// Hash aggregation: returns the environment rows
/// `[group keys ++ aggregate results]`.
///
/// Three execution paths, chosen per statement:
/// 1. **Two-phase parallel** — every aggregate state supports
///    [`mduck_sql::AggState::exact_merge`] and none is DISTINCT: workers
///    fold *contiguous* chunk ranges into partial group sets, merged
///    serially in range order.
/// 2. **Hybrid parallel** — some state merges inexactly (float sums) or
///    is DISTINCT: workers only evaluate group keys / arguments per
///    chunk; the state fold stays serial in chunk order.
/// 3. **Serial** — complex expressions (subqueries), correlated context,
///    or too little input.
fn aggregate(
    ctx: &EngineCtx<'_>,
    plan: &BoundSelect,
    input: &Chunks,
    outer: &OuterStack<'_>,
) -> SqlResult<Vec<Vec<Value>>> {
    let exec = PlanExecutor { ctx };
    let make_group = |key_bytes: Vec<u8>, keys: Vec<Value>| -> Group {
        Group {
            key_bytes,
            keys,
            states: plan.aggregates.iter().map(|a| (a.factory)()).collect(),
            distinct_seen: plan
                .aggregates
                .iter()
                .map(|a| a.distinct.then(std::collections::HashSet::new))
                .collect(),
        }
    };
    // Vectorized evaluation of group keys and aggregate arguments.
    let eval_cols = |chunk: &DataChunk,
                     outer: &OuterStack<'_>,
                     exec: &dyn SubqueryExec|
     -> SqlResult<(Vec<ColumnData>, Vec<Vec<ColumnData>>)> {
        let key_cols: SqlResult<Vec<ColumnData>> = plan
            .group_by
            .iter()
            .map(|g| eval_vector(g, chunk, outer, exec))
            .collect();
        let arg_cols: SqlResult<Vec<Vec<ColumnData>>> = plan
            .aggregates
            .iter()
            .map(|a| {
                a.args
                    .iter()
                    .map(|arg| eval_vector(arg, chunk, outer, exec))
                    .collect()
            })
            .collect();
        Ok((key_cols?, arg_cols?))
    };
    // Per-group footprint estimate: key bytes, key values, and a flat
    // allowance per aggregate state. Charged against the shared guard as
    // groups are *created* — in two-phase workers too, where the shared
    // root accumulating across partials is exactly what lets an oversized
    // hash table trip `PRAGMA memory_limit` mid-flight.
    let nstates = plan.aggregates.len() as u64;
    let group_bytes = |g: &Group| -> u64 {
        64 + g.key_bytes.len() as u64
            + g.keys.iter().map(Value::approx_bytes).sum::<u64>()
            + nstates * 48
    };
    let guard = ctx.guard;
    // Fold one chunk's evaluated columns into a group set, row by row.
    let fold_cols = |set: &mut GroupSet,
                     len: usize,
                     key_cols: &[ColumnData],
                     arg_cols: &[Vec<ColumnData>]|
     -> SqlResult<()> {
        let mut key = Vec::new();
        for i in 0..len {
            key.clear();
            let mut keys = Vec::with_capacity(key_cols.len());
            for kc in key_cols {
                let v = kc.get(i);
                v.hash_key(&mut key);
                keys.push(v);
            }
            let gi = match set.index.get(&key) {
                Some(&gi) => gi,
                None => {
                    let gi = set.groups.len();
                    set.index.insert(key.clone(), gi);
                    set.groups.push(make_group(key.clone(), keys));
                    guard.charge_mem(group_bytes(&set.groups[gi]))?;
                    gi
                }
            };
            let group = &mut set.groups[gi];
            for (ai, cols) in arg_cols.iter().enumerate() {
                let args: Vec<Value> = cols.iter().map(|c| c.get(i)).collect();
                if let Some(seen) = &mut group.distinct_seen[ai] {
                    let mut akey = Vec::new();
                    for a in &args {
                        a.hash_key(&mut akey);
                    }
                    if !seen.insert(akey) {
                        continue;
                    }
                }
                group.states[ai].update(&args)?;
            }
        }
        Ok(())
    };

    let n = input.chunks.len();
    let complex = plan.group_by.iter().any(BoundExpr::is_complex)
        || plan
            .aggregates
            .iter()
            .any(|a| a.args.iter().any(BoundExpr::is_complex));
    let parallel = ctx.parallel_ok(outer) && !complex && n >= MIN_PARALLEL_MORSELS;
    // DISTINCT gates updates *before* they reach the state, so partial
    // states would double-count across workers — those statements use the
    // hybrid path, as do aggregates whose merge is not exact (float sums).
    let two_phase = parallel
        && !plan.aggregates.iter().any(|a| a.distinct)
        && plan.aggregates.iter().all(|a| (a.factory)().exact_merge());

    let mut set = GroupSet::default();
    let progress = ctx.progress.as_deref();
    if two_phase {
        // Phase 1: contiguous chunk ranges → partial group sets. Ranges
        // (rather than dynamic single-chunk claiming) keep every state's
        // update order a subsequence of the serial order.
        let chunks = &input.chunks;
        let ranges = contiguous_ranges(n, ctx.threads);
        if let Some(pr) = progress {
            pr.add_total(ranges.len() as u64);
        }
        let (partials, stats) = morsel_map(ctx.threads, ranges.len(), |ri| {
            let mut part = GroupSet::default();
            for chunk in &chunks[ranges[ri].clone()] {
                guard.check_rows(chunk.len)?;
                let (key_cols, arg_cols) =
                    eval_cols(chunk, &OuterStack::EMPTY, &NoSubqueries)?;
                fold_cols(&mut part, chunk.len, &key_cols, &arg_cols)?;
            }
            if let Some(pr) = progress {
                pr.add_done(1);
            }
            Ok(part)
        })?;
        if let Some(stats) = &stats {
            ctx.record_parallel(plan_key(plan), "aggregate", stats);
        }
        // Phase 2: merge partials in range order — group discovery order
        // and state contents match a serial left-to-right run exactly.
        for partial in partials {
            for mut g in partial.groups {
                match set.index.get(&g.key_bytes) {
                    Some(&gi) => {
                        let dst = &mut set.groups[gi];
                        for (s, o) in dst.states.iter_mut().zip(g.states.iter_mut()) {
                            s.merge(&mut **o)?;
                        }
                    }
                    None => {
                        set.index.insert(g.key_bytes.clone(), set.groups.len());
                        set.groups.push(g);
                    }
                }
            }
        }
    } else if parallel {
        // Hybrid: parallel expression evaluation, serial state fold.
        let chunks = &input.chunks;
        if let Some(pr) = progress {
            pr.add_total(n as u64);
        }
        let (cols, stats) = morsel_map(ctx.threads, n, |i| {
            let chunk = &chunks[i];
            guard.check_rows(chunk.len)?;
            let (key_cols, arg_cols) = eval_cols(chunk, &OuterStack::EMPTY, &NoSubqueries)?;
            if let Some(pr) = progress {
                pr.add_done(1);
            }
            Ok((chunk.len, key_cols, arg_cols))
        })?;
        if let Some(stats) = &stats {
            ctx.record_parallel(plan_key(plan), "aggregate", stats);
        }
        for (len, key_cols, arg_cols) in &cols {
            ctx.guard.tick()?;
            fold_cols(&mut set, *len, key_cols, arg_cols)?;
        }
    } else {
        if let Some(pr) = progress {
            pr.add_total(input.chunks.len() as u64);
        }
        for chunk in &input.chunks {
            ctx.guard.check_rows(chunk.len)?;
            let (key_cols, arg_cols) = eval_cols(chunk, outer, &exec)?;
            fold_cols(&mut set, chunk.len, &key_cols, &arg_cols)?;
            if let Some(pr) = progress {
                pr.add_done(1);
            }
        }
    }
    // Attribute the surviving group table to the stage for `EXPLAIN
    // ANALYZE`; the guard was already charged group-by-group above.
    ctx.attribute_stage_mem(
        plan,
        "aggregate",
        set.groups.iter().map(&group_bytes).sum::<u64>(),
    );

    // GROUP BY with no groups in the input and no keys still yields one row
    // (global aggregate); with keys it yields nothing.
    if set.groups.is_empty() && plan.group_by.is_empty() {
        let mut g = make_group(Vec::new(), Vec::new());
        let mut row = Vec::new();
        for s in &mut g.states {
            row.push(s.finalize()?);
        }
        return Ok(vec![row]);
    }

    let mut rows: Vec<Vec<Value>> = Vec::with_capacity(set.groups.len());
    for mut g in set.groups {
        let mut row = g.keys;
        for s in &mut g.states {
            row.push(s.finalize()?);
        }
        rows.push(row);
    }
    Ok(rows)
}
