//! EXPLAIN rendering in DuckDB's boxed-tree style (the paper's Figure 1).
//!
//! `EXPLAIN ANALYZE` renders the same tree annotated with actuals from an
//! execution [`Profile`]: per-operator exclusive wall time, input/output
//! cardinalities, and chunk counts for the vectorized pipeline.

use mduck_sql::{BoundExpr, BoundSelect, SortKey};

use crate::exec::{op_key, op_name, PhysOp, Profile};

const BOX_WIDTH: usize = 29;

/// Actuals attached to an `EXPLAIN ANALYZE` rendering.
pub struct AnalyzeData<'a> {
    pub profile: &'a Profile,
    /// Key of the top-level plan's post-join stages (`exec::plan_key`).
    pub plan_key: usize,
    /// End-to-end execution wall time.
    pub total_ms: f64,
    /// Rows in the final result.
    pub result_rows: usize,
}

/// Render the full plan (post-join stages plus the join/scan tree).
pub fn render_plan(plan: &BoundSelect, tree: &PhysOp, remaining: &[BoundExpr]) -> String {
    render(plan, tree, remaining, None)
}

/// Render the plan annotated with actuals (`EXPLAIN ANALYZE`).
pub fn render_plan_analyzed(
    plan: &BoundSelect,
    tree: &PhysOp,
    remaining: &[BoundExpr],
    analyze: &AnalyzeData<'_>,
) -> String {
    render(plan, tree, remaining, Some(analyze))
}

fn render(
    plan: &BoundSelect,
    tree: &PhysOp,
    remaining: &[BoundExpr],
    analyze: Option<&AnalyzeData<'_>>,
) -> String {
    // (title, detail, stage-profile name)
    let mut nodes: Vec<(String, Vec<String>, Option<&'static str>)> = Vec::new();
    if plan.limit.is_some() || plan.offset.is_some() {
        let mut d = Vec::new();
        if let Some(l) = plan.limit {
            d.push(format!("LIMIT {l}"));
        }
        if let Some(o) = plan.offset {
            d.push(format!("OFFSET {o}"));
        }
        nodes.push(("LIMIT".into(), d, Some("limit")));
    }
    if !plan.order_by.is_empty() {
        let keys: Vec<String> = plan
            .order_by
            .iter()
            .map(|o| {
                let k = match &o.key {
                    SortKey::Output(i) => format!("#{i}"),
                    SortKey::Input(e) => format!("{e:?}"),
                };
                format!("{k} {}", if o.asc { "ASC" } else { "DESC" })
            })
            .collect();
        nodes.push(("ORDER_BY".into(), keys, Some("order_by")));
    }
    if plan.distinct {
        nodes.push(("DISTINCT".into(), vec![], Some("distinct")));
    }
    nodes.push((
        "PROJECTION".into(),
        plan.projections.iter().map(|p| format!("{p:?}")).collect(),
        Some("projection"),
    ));
    if plan.aggregated {
        let mut detail: Vec<String> =
            plan.group_by.iter().map(|g| format!("group: {g:?}")).collect();
        detail.extend(plan.aggregates.iter().map(|a| format!("{a:?}")));
        nodes.push(("HASH_GROUP_BY".into(), detail, Some("aggregate")));
    }
    for (i, pred) in remaining.iter().enumerate() {
        // The "filter" stage times all remaining predicates together;
        // attach it to the first box only.
        let stage = (i == 0).then_some("filter");
        nodes.push(("FILTER".into(), vec![format!("{pred:?}")], stage));
    }

    let mut out = String::new();
    if let Some(a) = analyze {
        out.push_str(&format!("Total Time: {:.3} ms\n", a.total_ms));
        out.push_str(&format!("Rows Returned: {}\n", a.result_rows));
    }
    for (name, mut detail, stage) in nodes {
        if let (Some(a), Some(stage)) = (analyze, stage) {
            detail.extend(stage_lines(a, stage));
        }
        push_box(&mut out, &name, &detail, true);
    }
    render_op(&mut out, tree, analyze);
    out
}

fn stage_lines(a: &AnalyzeData<'_>, stage: &'static str) -> Vec<String> {
    let mut lines = match a.profile.stages.borrow().get(&(a.plan_key, stage)) {
        Some(s) => {
            let mut l = vec![
                format!("actual: {:.3} ms", s.elapsed_ns as f64 / 1e6),
                format!("rows: {}", s.rows_out),
            ];
            if s.mem_bytes > 0 {
                l.push(format!("mem: {}", mduck_obs::format_bytes(s.mem_bytes)));
            }
            l
        }
        None => Vec::new(),
    };
    lines.extend(par_lines(a.profile, a.plan_key, stage));
    lines
}

/// Worker-pool actual lines for one parallel stage — emitted only when the
/// stage actually fanned out, so serial plans render unchanged.
fn par_lines(profile: &Profile, key: usize, stage: &'static str) -> Vec<String> {
    match profile.parallel.borrow().get(&(key, stage)) {
        Some(p) => vec![
            format!("parallel: {} workers", p.workers),
            format!("morsels: {} {:?}", p.morsels, p.per_worker),
            format!(
                "busy: {:.3} ms (max {:.3})",
                p.busy_ns as f64 / 1e6,
                p.max_worker_ns as f64 / 1e6
            ),
        ],
        None => Vec::new(),
    }
}

fn op_children(op: &PhysOp) -> Vec<&PhysOp> {
    match op {
        PhysOp::Filter { child, .. } => vec![child],
        PhysOp::HashJoin { left, right, .. } | PhysOp::CrossJoin { left, right } => {
            vec![left, right]
        }
        _ => Vec::new(),
    }
}

/// Actual-value detail lines for one operator box: exclusive wall time
/// (children's inclusive time subtracted), input/output rows, chunks.
fn op_lines(a: &AnalyzeData<'_>, op: &PhysOp) -> Vec<String> {
    let ops = a.profile.ops.borrow();
    let Some(p) = ops.get(&op_key(op)) else {
        return vec!["actual: not executed".into()];
    };
    let children = op_children(op);
    let child_ns: u64 = children
        .iter()
        .filter_map(|c| ops.get(&op_key(c)))
        .map(|c| c.elapsed_ns)
        .sum();
    let rows_in: u64 = if children.is_empty() {
        p.rows_scanned
    } else {
        children
            .iter()
            .filter_map(|c| ops.get(&op_key(c)))
            .map(|c| c.rows_out)
            .sum()
    };
    let mut lines = vec![
        format!("actual: {:.3} ms", p.elapsed_ns.saturating_sub(child_ns) as f64 / 1e6),
        format!("rows: {} → {}", rows_in, p.rows_out),
        format!("chunks: {}", p.chunks_out),
    ];
    if p.mem_bytes > 0 {
        lines.push(format!("mem: {}", mduck_obs::format_bytes(p.mem_bytes)));
    }
    if p.execs > 1 {
        lines.push(format!("execs: {}", p.execs));
    }
    // Operator-level parallel stages: scans materialize in parallel,
    // filters (including index-scan fallbacks) evaluate in parallel.
    for stage in ["scan", "filter"] {
        lines.extend(par_lines(a.profile, op_key(op), stage));
    }
    lines
}

fn render_op(out: &mut String, op: &PhysOp, analyze: Option<&AnalyzeData<'_>>) {
    let (title, mut detail, has_child): (&str, Vec<String>, bool) = match op {
        PhysOp::SeqScan { table } => ("SEQ_SCAN", vec![table.clone()], false),
        PhysOp::IndexScan { table, index, op, .. } => (
            "TRTREE_INDEX_SCAN",
            vec![table.clone(), format!("index: {index}"), format!("op: {op}")],
            false,
        ),
        PhysOp::CteScan { name, .. } => ("CTE_SCAN", vec![name.clone()], false),
        PhysOp::SubqueryScan { .. } => ("SUBQUERY_SCAN", vec![], false),
        PhysOp::Series { .. } => ("GENERATE_SERIES", vec![], false),
        PhysOp::SpansScan { .. } => ("SPANS_SCAN", vec!["mduck_spans()".into()], false),
        PhysOp::ProgressScan { .. } => ("PROGRESS_SCAN", vec!["mduck_progress()".into()], false),
        PhysOp::QueryLogScan { .. } => ("QUERY_LOG_SCAN", vec!["mduck_query_log()".into()], false),
        PhysOp::Filter { pred, .. } => ("FILTER", vec![format!("{pred:?}")], true),
        PhysOp::HashJoin { left_keys, right_keys, .. } => (
            "HASH_JOIN",
            left_keys
                .iter()
                .zip(right_keys)
                .map(|(l, r)| format!("{l:?} = {r:?}"))
                .collect(),
            true,
        ),
        PhysOp::CrossJoin { .. } => ("CROSS_PRODUCT", vec![], true),
    };
    if let Some(a) = analyze {
        detail.extend(op_lines(a, op));
    }
    push_box(out, title, &detail, has_child);
    match op {
        PhysOp::Filter { child, .. } => render_op(out, child, analyze),
        PhysOp::HashJoin { left, right, .. } => {
            // Render children sequentially (left above right) with a
            // divider — a readable simplification of DuckDB's 2-D layout.
            render_op(out, left, analyze);
            out.push_str(&format!("{:^width$}\n", "──── build side ────", width = BOX_WIDTH + 2));
            render_op(out, right, analyze);
        }
        PhysOp::CrossJoin { left, right } => {
            render_op(out, left, analyze);
            out.push_str(&format!("{:^width$}\n", "──── right side ────", width = BOX_WIDTH + 2));
            render_op(out, right, analyze);
        }
        _ => {}
    }
}

/// One flattened per-operator row of an analyzed plan (bench exports).
#[derive(Debug, Clone)]
pub struct OpBreakdown {
    pub op: &'static str,
    pub detail: String,
    pub execs: u64,
    /// Exclusive wall time (children subtracted).
    pub elapsed_ms: f64,
    pub rows_out: u64,
    pub chunks_out: u64,
    pub rows_scanned: u64,
    /// Bytes of output/state this operator materialized (charged against
    /// the statement's memory scope).
    pub mem_bytes: u64,
}

/// One post-join stage's actuals of the top-level plan (bench exports,
/// stage-timing assertions in tests).
#[derive(Debug, Clone)]
pub struct StageBreakdown {
    pub stage: &'static str,
    pub execs: u64,
    pub elapsed_ms: f64,
    pub rows_out: u64,
    /// Bytes of state this stage materialized (sort keys, group states).
    pub mem_bytes: u64,
}

/// Flatten the top-level plan's stage actuals, sorted by stage name.
pub fn stage_breakdown(plan_key: usize, profile: &Profile) -> Vec<StageBreakdown> {
    let stages = profile.stages.borrow();
    let mut out: Vec<StageBreakdown> = stages
        .iter()
        .filter(|((k, _), _)| *k == plan_key)
        .map(|((_, name), s)| StageBreakdown {
            stage: name,
            execs: s.execs,
            elapsed_ms: s.elapsed_ns as f64 / 1e6,
            rows_out: s.rows_out,
            mem_bytes: s.mem_bytes,
        })
        .collect();
    out.sort_by_key(|s| s.stage);
    out
}

/// Flatten an analyzed tree, preorder, into per-operator actuals.
pub fn op_breakdown(tree: &PhysOp, profile: &Profile) -> Vec<OpBreakdown> {
    let mut out = Vec::new();
    let ops = profile.ops.borrow();
    let mut stack = vec![tree];
    while let Some(op) = stack.pop() {
        let detail = match op {
            PhysOp::SeqScan { table } => table.clone(),
            PhysOp::IndexScan { table, index, .. } => format!("{table}.{index}"),
            PhysOp::CteScan { name, .. } => name.clone(),
            _ => String::new(),
        };
        let p = ops.get(&op_key(op)).cloned().unwrap_or_default();
        let child_ns: u64 = op_children(op)
            .iter()
            .filter_map(|c| ops.get(&op_key(c)))
            .map(|c| c.elapsed_ns)
            .sum();
        out.push(OpBreakdown {
            op: op_name(op),
            detail,
            execs: p.execs,
            elapsed_ms: p.elapsed_ns.saturating_sub(child_ns) as f64 / 1e6,
            rows_out: p.rows_out,
            chunks_out: p.chunks_out,
            rows_scanned: p.rows_scanned,
            mem_bytes: p.mem_bytes,
        });
        // Preorder: children pushed right-to-left.
        for c in op_children(op).into_iter().rev() {
            stack.push(c);
        }
    }
    out
}

fn push_box(out: &mut String, title: &str, detail: &[String], has_child: bool) {
    let top = format!("┌{}┐", "─".repeat(BOX_WIDTH));
    let bot = if has_child {
        format!("└{}┬{}┘", "─".repeat(BOX_WIDTH / 2), "─".repeat(BOX_WIDTH - BOX_WIDTH / 2 - 1))
    } else {
        format!("└{}┘", "─".repeat(BOX_WIDTH))
    };
    out.push_str(&top);
    out.push('\n');
    out.push_str(&format!("│{:^width$}│\n", truncate(title), width = BOX_WIDTH));
    if !detail.is_empty() {
        out.push_str(&format!("│{}│\n", "─".repeat(BOX_WIDTH)));
        for d in detail {
            out.push_str(&format!("│{:^width$}│\n", truncate(d), width = BOX_WIDTH));
        }
    }
    out.push_str(&bot);
    out.push('\n');
}

fn truncate(s: &str) -> String {
    let max = BOX_WIDTH - 2;
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let mut t: String = s.chars().take(max - 1).collect();
        t.push('…');
        t
    }
}
