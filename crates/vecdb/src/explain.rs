//! EXPLAIN rendering in DuckDB's boxed-tree style (the paper's Figure 1).

use mduck_sql::{BoundExpr, BoundSelect, SortKey};

use crate::exec::PhysOp;

const BOX_WIDTH: usize = 29;

/// Render the full plan (post-join stages plus the join/scan tree).
pub fn render_plan(plan: &BoundSelect, tree: &PhysOp, remaining: &[BoundExpr]) -> String {
    let mut nodes: Vec<(String, Vec<String>)> = Vec::new();
    if plan.limit.is_some() || plan.offset.is_some() {
        nodes.push(("LIMIT".into(), vec![format!("{:?}", plan.limit.unwrap_or(0))]));
    }
    if !plan.order_by.is_empty() {
        let keys: Vec<String> = plan
            .order_by
            .iter()
            .map(|o| {
                let k = match &o.key {
                    SortKey::Output(i) => format!("#{i}"),
                    SortKey::Input(e) => format!("{e:?}"),
                };
                format!("{k} {}", if o.asc { "ASC" } else { "DESC" })
            })
            .collect();
        nodes.push(("ORDER_BY".into(), keys));
    }
    if plan.distinct {
        nodes.push(("DISTINCT".into(), vec![]));
    }
    nodes.push((
        "PROJECTION".into(),
        plan.projections.iter().map(|p| format!("{p:?}")).collect(),
    ));
    if plan.aggregated {
        let mut detail: Vec<String> =
            plan.group_by.iter().map(|g| format!("group: {g:?}")).collect();
        detail.extend(plan.aggregates.iter().map(|a| format!("{a:?}")));
        nodes.push(("HASH_GROUP_BY".into(), detail));
    }
    for pred in remaining {
        nodes.push(("FILTER".into(), vec![format!("{pred:?}")]));
    }

    let mut out = String::new();
    for (name, detail) in nodes {
        push_box(&mut out, &name, &detail, true);
    }
    render_op(&mut out, tree);
    out
}

fn render_op(out: &mut String, op: &PhysOp) {
    match op {
        PhysOp::SeqScan { table } => {
            push_box(out, "SEQ_SCAN", &[table.clone()], false);
        }
        PhysOp::IndexScan { table, index, op, .. } => {
            push_box(
                out,
                "TRTREE_INDEX_SCAN",
                &[table.clone(), format!("index: {index}"), format!("op: {op}")],
                false,
            );
        }
        PhysOp::CteScan { name, .. } => {
            push_box(out, "CTE_SCAN", &[name.clone()], false);
        }
        PhysOp::SubqueryScan { .. } => {
            push_box(out, "SUBQUERY_SCAN", &[], false);
        }
        PhysOp::Series { .. } => {
            push_box(out, "GENERATE_SERIES", &[], false);
        }
        PhysOp::Filter { pred, child } => {
            push_box(out, "FILTER", &[format!("{pred:?}")], true);
            render_op(out, child);
        }
        PhysOp::HashJoin { left, right, left_keys, right_keys } => {
            let cond: Vec<String> = left_keys
                .iter()
                .zip(right_keys)
                .map(|(l, r)| format!("{l:?} = {r:?}"))
                .collect();
            push_box(out, "HASH_JOIN", &cond, true);
            // Render children sequentially (left above right) with a
            // divider — a readable simplification of DuckDB's 2-D layout.
            render_op(out, left);
            out.push_str(&format!("{:^width$}\n", "──── build side ────", width = BOX_WIDTH + 2));
            render_op(out, right);
        }
        PhysOp::CrossJoin { left, right } => {
            push_box(out, "CROSS_PRODUCT", &[], true);
            render_op(out, left);
            out.push_str(&format!("{:^width$}\n", "──── right side ────", width = BOX_WIDTH + 2));
            render_op(out, right);
        }
    }
}

fn push_box(out: &mut String, title: &str, detail: &[String], has_child: bool) {
    let top = format!("┌{}┐", "─".repeat(BOX_WIDTH));
    let bot = if has_child {
        format!("└{}┬{}┘", "─".repeat(BOX_WIDTH / 2), "─".repeat(BOX_WIDTH - BOX_WIDTH / 2 - 1))
    } else {
        format!("└{}┘", "─".repeat(BOX_WIDTH))
    };
    out.push_str(&top);
    out.push('\n');
    out.push_str(&format!("│{:^width$}│\n", truncate(title), width = BOX_WIDTH));
    if !detail.is_empty() {
        out.push_str(&format!("│{}│\n", "─".repeat(BOX_WIDTH)));
        for d in detail {
            out.push_str(&format!("│{:^width$}│\n", truncate(d), width = BOX_WIDTH));
        }
    }
    out.push_str(&bot);
    out.push('\n');
}

fn truncate(s: &str) -> String {
    let max = BOX_WIDTH - 2;
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let mut t: String = s.chars().take(max - 1).collect();
        t.push('…');
        t
    }
}
