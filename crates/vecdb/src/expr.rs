//! Vectorized expression evaluation over [`DataChunk`]s.
//!
//! Simple expressions (column refs, literals, built-in comparisons and
//! arithmetic over primitive payloads, AND/OR) run as tight typed loops;
//! extension calls dispatch per row through their registered scalar
//! function (as DuckDB does for extension UDFs); subquery-bearing
//! expressions fall back to the shared row-wise evaluator.

use mduck_sql::ast::BinaryOp;
use mduck_sql::eval::{eval, OuterStack, SubqueryExec};
use mduck_sql::{BoundExpr, LogicalType, SqlError, SqlResult, Value};

use crate::column::{ColumnData, DataChunk, Payload};

/// Evaluate an expression over a chunk, producing one column.
pub fn eval_vector(
    expr: &BoundExpr,
    chunk: &DataChunk,
    outer: &OuterStack<'_>,
    exec: &dyn SubqueryExec,
) -> SqlResult<ColumnData> {
    match expr {
        BoundExpr::ColumnRef { index, .. } => chunk
            .columns
            .get(*index)
            .cloned()
            .ok_or_else(|| SqlError::execution(format!("column {index} out of range"))),
        BoundExpr::Literal(v) => {
            let ty = v.logical_type();
            let ty = if ty == LogicalType::Null { LogicalType::Int } else { ty };
            let mut c = ColumnData::new(&ty);
            for _ in 0..chunk.len {
                c.push(v)?;
            }
            Ok(c)
        }
        BoundExpr::Compare { op, left, right } => {
            let l = eval_vector(left, chunk, outer, exec)?;
            let r = eval_vector(right, chunk, outer, exec)?;
            compare_columns(*op, &l, &r, chunk.len)
        }
        BoundExpr::And(es) => {
            let mut acc: Option<ColumnData> = None;
            for e in es {
                let c = eval_vector(e, chunk, outer, exec)?;
                acc = Some(match acc {
                    None => c,
                    Some(a) => bool_combine(&a, &c, chunk.len, true)?,
                });
            }
            acc.ok_or_else(|| SqlError::execution("empty AND"))
        }
        BoundExpr::Or(es) => {
            let mut acc: Option<ColumnData> = None;
            for e in es {
                let c = eval_vector(e, chunk, outer, exec)?;
                acc = Some(match acc {
                    None => c,
                    Some(a) => bool_combine(&a, &c, chunk.len, false)?,
                });
            }
            acc.ok_or_else(|| SqlError::execution("empty OR"))
        }
        BoundExpr::Not(e) => {
            let c = eval_vector(e, chunk, outer, exec)?;
            let mut out = ColumnData::new(&LogicalType::Bool);
            for i in 0..chunk.len {
                match c.get(i) {
                    Value::Bool(b) => out.push(&Value::Bool(!b))?,
                    Value::Null => out.push_null(),
                    other => {
                        return Err(SqlError::execution(format!("NOT over {other:?}")))
                    }
                }
            }
            Ok(out)
        }
        BoundExpr::IsNull { expr, negated } => {
            let c = eval_vector(expr, chunk, outer, exec)?;
            let mut out = ColumnData::new(&LogicalType::Bool);
            for i in 0..chunk.len {
                let is_null = !c.validity[i]
                    || matches!(&c.payload, Payload::Ext(p) if p[i].is_none())
                    || matches!(&c.payload, Payload::List(p) if p[i].is_none());
                out.push(&Value::Bool(is_null != *negated))?;
            }
            Ok(out)
        }
        BoundExpr::Call { func, args, strict, ty, .. } if !expr.is_complex() => {
            // Evaluate arguments vectorized, then dispatch the scalar
            // function row by row (the DuckDB extension-UDF pattern).
            let arg_cols: SqlResult<Vec<ColumnData>> = args
                .iter()
                .map(|a| eval_vector(a, chunk, outer, exec))
                .collect();
            let arg_cols = arg_cols?;
            let mut out = ColumnData::new(ty);
            let mut scratch: Vec<Value> = Vec::with_capacity(args.len());
            'rows: for i in 0..chunk.len {
                scratch.clear();
                for c in &arg_cols {
                    let v = c.get(i);
                    if *strict && v.is_null() {
                        out.push_null();
                        continue 'rows;
                    }
                    scratch.push(v);
                }
                out.push(&func(&scratch)?)?;
            }
            Ok(out)
        }
        BoundExpr::Arith { op, left, right, ty } if !expr.is_complex() => {
            let l = eval_vector(left, chunk, outer, exec)?;
            let r = eval_vector(right, chunk, outer, exec)?;
            arith_columns(*op, &l, &r, ty, chunk.len)
        }
        _ => fallback_rows(expr, chunk, outer, exec),
    }
}

/// Row-at-a-time fallback (subqueries, outer references, CASE, ...).
fn fallback_rows(
    expr: &BoundExpr,
    chunk: &DataChunk,
    outer: &OuterStack<'_>,
    exec: &dyn SubqueryExec,
) -> SqlResult<ColumnData> {
    let ty = expr.ty();
    let ty = if ty == LogicalType::Null || ty == LogicalType::Any {
        LogicalType::Int
    } else {
        ty
    };
    let mut out = ColumnData::new(&ty);
    let mut row: Vec<Value> = Vec::with_capacity(chunk.columns.len());
    for i in 0..chunk.len {
        row.clear();
        row.extend(chunk.columns.iter().map(|c| c.get(i)));
        let v = eval(expr, &row, outer, exec)?;
        out.push(&v)?;
    }
    Ok(out)
}

/// Vectorized arithmetic with typed fast paths for Int/Float payloads;
/// temporal and mixed payloads fall back to the shared scalar kernel.
fn arith_columns(
    op: BinaryOp,
    l: &ColumnData,
    r: &ColumnData,
    ty: &LogicalType,
    len: usize,
) -> SqlResult<ColumnData> {
    use mduck_sql::eval::arith;
    let mut out = ColumnData::new(ty);
    match (&l.payload, &r.payload, ty) {
        (Payload::Int(a), Payload::Int(b), LogicalType::Int) => {
            let overflow = |what: &str, x: i64, y: i64| {
                SqlError::overflow(format!("bigint {what} of {x} and {y} out of range"))
            };
            for i in 0..len {
                if !l.validity[i] || !r.validity[i] {
                    out.push_null();
                    continue;
                }
                let v = match op {
                    BinaryOp::Add => a[i]
                        .checked_add(b[i])
                        .ok_or_else(|| overflow("addition", a[i], b[i]))?,
                    BinaryOp::Sub => a[i]
                        .checked_sub(b[i])
                        .ok_or_else(|| overflow("subtraction", a[i], b[i]))?,
                    BinaryOp::Mul => a[i]
                        .checked_mul(b[i])
                        .ok_or_else(|| overflow("multiplication", a[i], b[i]))?,
                    BinaryOp::Div => {
                        if b[i] == 0 {
                            return Err(SqlError::execution("division by zero"));
                        }
                        // i64::MIN / -1 overflows.
                        a[i].checked_div(b[i]).ok_or_else(|| overflow("division", a[i], b[i]))?
                    }
                    BinaryOp::Mod => {
                        if b[i] == 0 {
                            return Err(SqlError::execution("modulo by zero"));
                        }
                        a[i].checked_rem(b[i]).ok_or_else(|| overflow("modulo", a[i], b[i]))?
                    }
                    _ => return Err(SqlError::execution("bad arithmetic op")),
                };
                out.push(&Value::Int(v))?;
            }
            Ok(out)
        }
        (Payload::Float(a), Payload::Float(b), LogicalType::Float) => {
            for i in 0..len {
                if !l.validity[i] || !r.validity[i] {
                    out.push_null();
                    continue;
                }
                let v = match op {
                    BinaryOp::Add => a[i] + b[i],
                    BinaryOp::Sub => a[i] - b[i],
                    BinaryOp::Mul => a[i] * b[i],
                    BinaryOp::Div => {
                        if b[i] == 0.0 {
                            return Err(SqlError::execution("division by zero"));
                        }
                        a[i] / b[i]
                    }
                    BinaryOp::Mod => a[i] % b[i],
                    _ => return Err(SqlError::execution("bad arithmetic op")),
                };
                out.push(&Value::Float(v))?;
            }
            Ok(out)
        }
        _ => {
            for i in 0..len {
                let v = arith(op, &l.get(i), &r.get(i))?;
                out.push(&v)?;
            }
            Ok(out)
        }
    }
}

/// Vectorized comparison with typed fast paths.
fn compare_columns(
    op: BinaryOp,
    l: &ColumnData,
    r: &ColumnData,
    len: usize,
) -> SqlResult<ColumnData> {
    let mut out = ColumnData::new(&LogicalType::Bool);
    macro_rules! fast {
        ($a:expr, $b:expr) => {{
            for i in 0..len {
                if !l.validity[i] || !r.validity[i] {
                    out.push_null();
                    continue;
                }
                let cmp = $a[i].partial_cmp(&$b[i]);
                let b = match (op, cmp) {
                    (BinaryOp::Eq, Some(o)) => o == std::cmp::Ordering::Equal,
                    (BinaryOp::NotEq, Some(o)) => o != std::cmp::Ordering::Equal,
                    (BinaryOp::Lt, Some(o)) => o == std::cmp::Ordering::Less,
                    (BinaryOp::LtEq, Some(o)) => o != std::cmp::Ordering::Greater,
                    (BinaryOp::Gt, Some(o)) => o == std::cmp::Ordering::Greater,
                    (BinaryOp::GtEq, Some(o)) => o != std::cmp::Ordering::Less,
                    _ => {
                        out.push_null();
                        continue;
                    }
                };
                out.push(&Value::Bool(b))?;
            }
            return Ok(out);
        }};
    }
    match (&l.payload, &r.payload) {
        (Payload::Int(a), Payload::Int(b)) => fast!(a, b),
        (Payload::Float(a), Payload::Float(b)) => fast!(a, b),
        (Payload::Timestamp(a), Payload::Timestamp(b)) => fast!(a, b),
        (Payload::Date(a), Payload::Date(b)) => fast!(a, b),
        (Payload::Text(a), Payload::Text(b)) => fast!(a, b),
        _ => {
            // Generic path (mixed numeric, ext values, ...).
            for i in 0..len {
                let v = mduck_sql::compare(op, &l.get(i), &r.get(i));
                out.push(&v)?;
            }
            Ok(out)
        }
    }
}

/// Combine two boolean columns with three-valued AND/OR.
fn bool_combine(a: &ColumnData, b: &ColumnData, len: usize, is_and: bool) -> SqlResult<ColumnData> {
    let mut out = ColumnData::new(&LogicalType::Bool);
    let (Payload::Bool(pa), Payload::Bool(pb)) = (&a.payload, &b.payload) else {
        return Err(SqlError::execution("AND/OR over non-boolean columns"));
    };
    for i in 0..len {
        let av = a.validity[i].then(|| pa[i]);
        let bv = b.validity[i].then(|| pb[i]);
        let result = if is_and {
            match (av, bv) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            }
        } else {
            match (av, bv) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            }
        };
        match result {
            Some(v) => out.push(&Value::Bool(v))?,
            None => out.push_null(),
        }
    }
    Ok(out)
}

/// Evaluate a predicate over a chunk, returning the selected row indices.
pub fn filter_chunk(
    pred: &BoundExpr,
    chunk: &DataChunk,
    outer: &OuterStack<'_>,
    exec: &dyn SubqueryExec,
) -> SqlResult<Vec<usize>> {
    let c = eval_vector(pred, chunk, outer, exec)?;
    let Payload::Bool(p) = &c.payload else {
        return Err(SqlError::execution("filter predicate is not boolean"));
    };
    Ok((0..chunk.len).filter(|&i| c.validity[i] && p[i]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mduck_sql::eval::NoSubqueries;

    fn chunk() -> DataChunk {
        let mut a = ColumnData::new(&LogicalType::Int);
        let mut b = ColumnData::new(&LogicalType::Int);
        for i in 0..5 {
            a.push(&Value::Int(i)).unwrap();
            b.push(&Value::Int(10 - i)).unwrap();
        }
        DataChunk::from_columns(vec![a, b])
    }

    fn col(i: usize) -> BoundExpr {
        BoundExpr::ColumnRef { index: i, ty: LogicalType::Int }
    }

    #[test]
    fn vector_compare_and_filter() {
        let pred = BoundExpr::Compare {
            op: BinaryOp::Lt,
            left: Box::new(col(0)),
            right: Box::new(col(1)),
        };
        let sel = filter_chunk(&pred, &chunk(), &OuterStack::EMPTY, &NoSubqueries).unwrap();
        assert_eq!(sel, vec![0, 1, 2, 3, 4].into_iter().filter(|&i| i < (10 - i)).collect::<Vec<_>>());
    }

    #[test]
    fn and_with_nulls() {
        let mut a = ColumnData::new(&LogicalType::Bool);
        a.push(&Value::Bool(true)).unwrap();
        a.push_null();
        a.push(&Value::Bool(false)).unwrap();
        let mut b = ColumnData::new(&LogicalType::Bool);
        for _ in 0..3 {
            b.push(&Value::Bool(true)).unwrap();
        }
        let out = bool_combine(&a, &b, 3, true).unwrap();
        assert_eq!(out.get(0), Value::Bool(true));
        assert_eq!(out.get(1), Value::Null);
        assert_eq!(out.get(2), Value::Bool(false));
    }

    #[test]
    fn literal_broadcast() {
        let c = eval_vector(
            &BoundExpr::Literal(Value::Int(7)),
            &chunk(),
            &OuterStack::EMPTY,
            &NoSubqueries,
        )
        .unwrap();
        assert_eq!(c.len(), 5);
        assert_eq!(c.get(4), Value::Int(7));
    }
}
