//! The embeddable database instance: the `duckdb.Connection` analogue.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use mduck_obs::QueryProgress;
use mduck_sync::{Mutex, RwLock};
use mduck_wal::{DurabilityManager, IndexDef, Recovery, Snapshot, TableSnapshot, WalRecord};

use mduck_sql::ast::{InsertSource, SelectStmt, Statement};
use mduck_sql::eval::{eval, OuterStack};
use mduck_sql::{
    parse_statement, Binder, Catalog, ExecGuard, ExecLimits, LogicalType, PragmaValue, Registry,
    Schema, SqlError, SqlResult, Value,
};

use crate::catalog::{DbCatalog, Table};
use crate::column::ColumnData;
use crate::exec::{execute_select, execute_select_planned, plan_joins, plan_key, EngineCtx};
use crate::explain::{
    op_breakdown, render_plan, render_plan_analyzed, stage_breakdown, AnalyzeData, OpBreakdown,
    StageBreakdown,
};
use crate::index::IndexTypeRegistry;

/// Hard ceiling on the worker pool size (sanity bound for PRAGMA input).
const MAX_THREADS: usize = 256;

/// A query result: output schema plus materialized rows.
#[derive(Debug, Clone)]
pub struct QueryResult {
    pub schema: Schema,
    pub rows: Vec<Vec<Value>>,
}

impl QueryResult {
    pub fn empty() -> Self {
        QueryResult { schema: Schema::default(), rows: Vec::new() }
    }

    /// Column names.
    pub fn column_names(&self) -> Vec<&str> {
        self.schema.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Single scalar convenience accessor.
    pub fn scalar(&self) -> SqlResult<&Value> {
        self.rows
            .first()
            .and_then(|r| r.first())
            .ok_or_else(|| SqlError::execution("query returned no rows"))
    }

    /// ASCII table rendering for examples and demos.
    pub fn to_table_string(&self) -> String {
        let mut widths: Vec<usize> =
            self.schema.fields.iter().map(|f| f.name.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        let header: Vec<String> = self
            .schema
            .fields
            .iter()
            .enumerate()
            .map(|(i, f)| format!("{:width$}", f.name, width = widths[i]))
            .collect();
        out.push_str(&header.join(" │ "));
        out.push('\n');
        out.push_str(&widths.iter().map(|w| "─".repeat(*w)).collect::<Vec<_>>().join("─┼─"));
        out.push('\n');
        for row in rendered {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect();
            out.push_str(&line.join(" │ "));
            out.push('\n');
        }
        out
    }
}

/// An in-process database instance (the DuckDB substrate).
///
/// Extensions install themselves by mutating [`Database::registry`] and
/// [`Database::index_types`] at load time, exactly as MobilityDuck
/// registers its types, functions, casts, operators, and the TRTREE index
/// type against DuckDB (§3.3–§4.1).
pub struct Database {
    pub catalog: DbCatalog,
    registry: Arc<RwLock<Registry>>,
    index_types: Arc<RwLock<IndexTypeRegistry>>,
    limits: RwLock<ExecLimits>,
    /// Worker threads for morsel-driven execution; 0 = auto-detect.
    threads: std::sync::atomic::AtomicUsize,
    /// Progress handle of the most recent SQL-text statement, pollable
    /// from other threads via [`Database::progress`]. Kept after the
    /// statement finishes (reporting `1.0`) until the next one replaces
    /// it.
    current_progress: Mutex<Option<Arc<QueryProgress>>>,
    /// Durability manager when a WAL is attached ([`Database::open`] /
    /// `PRAGMA wal='path'`); `None` keeps the in-memory default.
    wal: RwLock<Option<Arc<DurabilityManager>>>,
    /// Serializes catalog/data commits and checkpoints, so a checkpoint
    /// image is always consistent with the WAL position it claims to
    /// cover and the log order always matches the apply order.
    commit_lock: Mutex<()>,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// A fresh instance with the built-in SQL surface.
    pub fn new() -> Self {
        Database {
            catalog: DbCatalog::default(),
            registry: Arc::new(RwLock::new(Registry::with_builtins())),
            index_types: Arc::new(RwLock::new(IndexTypeRegistry::default())),
            limits: RwLock::new(ExecLimits::default()),
            threads: std::sync::atomic::AtomicUsize::new(0),
            current_progress: Mutex::new(None),
            wal: RwLock::new(None),
            commit_lock: Mutex::new(()),
        }
    }

    /// A durable instance: open (or create) the WAL at `path`, recover
    /// whatever a previous process committed, and log every later DDL
    /// and DML statement. Only the built-in SQL surface is recovered —
    /// databases using extension types must [`Database::new`], load the
    /// extension, then attach with [`Database::attach_wal`] so recovery
    /// can decode the extension values.
    pub fn open(path: impl AsRef<Path>) -> SqlResult<Self> {
        let db = Self::new();
        db.attach_wal(path)?;
        Ok(db)
    }

    /// Completion estimate of the most recent [`Database::execute`] /
    /// [`Database::execute_analyzed`] statement: monotonically
    /// non-decreasing in `[0, 1]`, exactly `1.0` once finished, `None`
    /// before any statement ran. Safe to poll from another thread while
    /// the statement is still executing.
    pub fn progress(&self) -> Option<f64> {
        self.current_progress.lock().as_ref().map(|p| p.fraction())
    }

    /// Set the worker-thread count for morsel-driven execution; `0`
    /// restores auto-detection. Equivalent to `PRAGMA threads = N`.
    pub fn set_threads(&self, n: usize) {
        self.threads.store(n.min(MAX_THREADS), std::sync::atomic::Ordering::Relaxed);
    }

    /// The configured thread count (`0` = auto-detect).
    pub fn threads(&self) -> usize {
        self.threads.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The thread count statements actually execute with: the configured
    /// value, or (when auto) the `MDUCK_THREADS` environment variable,
    /// or `std::thread::available_parallelism`.
    pub fn effective_threads(&self) -> usize {
        let configured = self.threads();
        if configured > 0 {
            return configured;
        }
        if let Ok(v) = std::env::var("MDUCK_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n.min(MAX_THREADS);
                }
            }
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(MAX_THREADS)
    }

    /// Set the resource limits applied to every subsequent statement.
    pub fn set_exec_limits(&self, limits: ExecLimits) {
        *self.limits.write() = limits;
    }

    /// The resource limits currently in force.
    pub fn exec_limits(&self) -> ExecLimits {
        self.limits.read().clone()
    }

    /// Mutate the function/type/cast registry (extension load hook).
    pub fn registry_mut(&self) -> mduck_sync::RwLockWriteGuard<'_, Registry> {
        self.registry.write()
    }

    pub fn registry(&self) -> mduck_sync::RwLockReadGuard<'_, Registry> {
        self.registry.read()
    }

    /// Mutate the index-type registry (extension load hook).
    pub fn index_types_mut(&self) -> mduck_sync::RwLockWriteGuard<'_, IndexTypeRegistry> {
        self.index_types.write()
    }

    /// Attach a WAL to a live database (`PRAGMA wal='path'`): recover
    /// the on-disk state into the catalog, then log every later DDL/DML
    /// statement. When the WAL is brand new and the database already
    /// holds tables, an immediate checkpoint captures them — otherwise
    /// the pre-attach state would never be covered by recovery.
    pub fn attach_wal(&self, path: impl AsRef<Path>) -> SqlResult<()> {
        let _commit = self.commit_lock.lock();
        if self.wal.read().is_some() {
            return Err(SqlError::execution(
                "a WAL is already attached; detach it first (PRAGMA wal='off')",
            ));
        }
        let (manager, recovery) = {
            let registry = self.registry.read();
            DurabilityManager::open(path.as_ref(), &registry)?
        };
        self.apply_recovery(&recovery)?;
        let manager = Arc::new(manager);
        let fresh = recovery.snapshot.is_none() && recovery.records.is_empty();
        if fresh && !self.catalog.table_names().is_empty() {
            self.checkpoint_locked(&manager)?;
        }
        *self.wal.write() = Some(manager);
        Ok(())
    }

    /// Detach the WAL (`PRAGMA wal='off'`). Already-logged state stays
    /// on disk; later statements are in-memory only.
    pub fn detach_wal(&self) {
        let _commit = self.commit_lock.lock();
        *self.wal.write() = None;
    }

    /// The attached durability manager, if any.
    pub fn wal(&self) -> Option<Arc<DurabilityManager>> {
        self.wal.read().clone()
    }

    /// Bulk-insert pre-typed rows through the full commit path: atomic
    /// append, WAL record, auto-checkpoint — identical durability to an
    /// `INSERT` statement, without parse/bind overhead. This is what
    /// bulk loaders (berlinmod) should call so loaded data survives a
    /// crash like any other committed rows.
    pub fn insert_rows(&self, table: &str, rows: &[Vec<Value>]) -> SqlResult<usize> {
        let needed = {
            let _commit = self.commit_lock.lock();
            let t = self.catalog.get(table)?;
            let mut t = t.write();
            let pre_rows = t.row_count();
            t.append_rows(rows)?;
            if self.wal.read().is_none() {
                // No WAL: skip the record copy entirely (hot bulk-load path).
                false
            } else {
                let record = WalRecord::Insert { table: t.name.clone(), rows: rows.to_vec() };
                match self.wal_append(&record) {
                    Ok(needed) => needed,
                    Err(e) => {
                        truncate_table(&mut t, pre_rows, &self.index_types.read())?;
                        return Err(e);
                    }
                }
            }
        };
        self.maybe_auto_checkpoint(needed);
        Ok(rows.len())
    }

    /// Snapshot the whole database into the checkpoint file and truncate
    /// the WAL (the `CHECKPOINT` statement). Returns `false` (and does
    /// nothing) when no WAL is attached.
    pub fn checkpoint(&self) -> SqlResult<bool> {
        let Some(manager) = self.wal() else { return Ok(false) };
        let _commit = self.commit_lock.lock();
        self.checkpoint_locked(&manager)?;
        Ok(true)
    }

    /// Checkpoint body; caller holds `commit_lock` so no DML can slip
    /// between building the image and stamping its WAL position.
    fn checkpoint_locked(&self, manager: &DurabilityManager) -> SqlResult<()> {
        let snapshot = self.snapshot_state();
        manager.checkpoint(&snapshot)
    }

    /// Materialize the catalog and every table (rows, indexes) as a
    /// checkpoint image, tables sorted by name.
    fn snapshot_state(&self) -> Snapshot {
        let mut tables = Vec::new();
        for name in self.catalog.table_names() {
            let Ok(t) = self.catalog.get(&name) else { continue };
            let t = t.read();
            let columns: Vec<(String, LogicalType)> = t
                .column_names
                .iter()
                .cloned()
                .zip(t.columns.iter().map(|c| c.ty.clone()))
                .collect();
            let indexes: Vec<IndexDef> = t
                .indexes
                .iter()
                .map(|i| IndexDef {
                    name: i.name().to_string(),
                    method: i.method().to_string(),
                    column: t.column_names[i.column()].clone(),
                })
                .collect();
            let rows: Vec<Vec<Value>> = (0..t.row_count()).map(|i| t.row(i)).collect();
            tables.push(TableSnapshot { name: t.name.clone(), columns, indexes, rows });
        }
        Snapshot { tables }
    }

    /// Rebuild in-memory state from what recovery found on disk: the
    /// checkpoint image first (tables, rows, then indexes over them),
    /// then every WAL record in log order.
    fn apply_recovery(&self, recovery: &Recovery) -> SqlResult<()> {
        if let Some(snapshot) = &recovery.snapshot {
            for ts in &snapshot.tables {
                self.catalog.create_table(&ts.name, ts.columns.clone(), false)?;
                let t = self.catalog.get(&ts.name)?;
                t.write().append_rows(&ts.rows)?;
            }
            for ts in &snapshot.tables {
                for idx in &ts.indexes {
                    self.create_index(&idx.name, &ts.name, &idx.method, &idx.column)?;
                }
            }
        }
        for record in &recovery.records {
            self.apply_record(record)?;
        }
        Ok(())
    }

    /// Replay one WAL record. Reuses the same storage paths the live
    /// statements use, so replay is apply — byte-for-byte the same
    /// coercions, the same index rebuilds.
    fn apply_record(&self, record: &WalRecord) -> SqlResult<()> {
        match record {
            WalRecord::CreateTable { name, columns } => {
                self.catalog.create_table(name, columns.clone(), false)
            }
            WalRecord::DropTable { name } => self.catalog.drop_table(name, false),
            WalRecord::CreateIndex { name, table, method, column } => {
                self.create_index(name, table, method, column)
            }
            WalRecord::Insert { table, rows } => {
                let t = self.catalog.get(table)?;
                let res = t.write().append_rows(rows);
                res
            }
            WalRecord::Update { table, cells } => {
                let t = self.catalog.get(table)?;
                let mut t = t.write();
                let mut by_col: BTreeMap<usize, Vec<(usize, Value)>> = BTreeMap::new();
                for (row, col, v) in cells {
                    by_col.entry(*col as usize).or_default().push((*row as usize, v.clone()));
                }
                for (col, reps) in &by_col {
                    let nc = build_column_with_replacements(&t, *col, reps)?;
                    t.columns[*col] = nc;
                }
                let cols: Vec<usize> = by_col.keys().copied().collect();
                rebuild_indexes_for_columns(&mut t, &cols, &self.index_types.read())
            }
            WalRecord::Delete { table, rows } => {
                let t = self.catalog.get(table)?;
                let mut t = t.write();
                let dead: std::collections::HashSet<u64> = rows.iter().copied().collect();
                let keep: Vec<usize> =
                    (0..t.row_count()).filter(|i| !dead.contains(&(*i as u64))).collect();
                t.columns = t.columns.iter().map(|c| c.gather(&keep)).collect();
                let all: Vec<usize> = (0..t.columns.len()).collect();
                rebuild_indexes_for_columns(&mut t, &all, &self.index_types.read())
            }
        }
    }

    /// Append one record to the attached WAL, if any. Returns whether
    /// the log has grown past the auto-checkpoint threshold.
    fn wal_append(&self, record: &WalRecord) -> SqlResult<bool> {
        match &*self.wal.read() {
            Some(manager) => manager.append(record),
            None => Ok(false),
        }
    }

    /// Run the size-triggered checkpoint after a statement committed.
    /// A failure here must not fail that statement — it is already
    /// applied and durable in the log; the WAL simply keeps growing and
    /// the next trigger retries (a simulated crash poisons the manager
    /// and surfaces on the next statement instead).
    fn maybe_auto_checkpoint(&self, needed: bool) {
        if !needed {
            return;
        }
        let Some(manager) = self.wal() else { return };
        let _commit = self.commit_lock.lock();
        if self.checkpoint_locked(&manager).is_ok() {
            mduck_obs::metrics().wal_auto_checkpoints.inc(1);
        }
    }

    /// Execute one SQL statement. `SHOW TABLES` and `DESCRIBE <table>`
    /// are handled as utility statements, as in DuckDB's shell.
    pub fn execute(&self, sql: &str) -> SqlResult<QueryResult> {
        let trimmed = sql.trim().trim_end_matches(';').trim();
        if trimmed.eq_ignore_ascii_case("show tables") {
            let rows: Vec<Vec<Value>> = self
                .catalog
                .table_names()
                .into_iter()
                .map(|n| vec![Value::text(n)])
                .collect();
            return Ok(QueryResult {
                schema: Schema::new(vec![mduck_sql::Field {
                    name: "name".into(),
                    table: None,
                    ty: LogicalType::Text,
                }]),
                rows,
            });
        }
        if let Some(rest) = strip_keyword(trimmed, "describe") {
            let cols = self
                .catalog
                .table_schema(rest.trim())
                .ok_or_else(|| SqlError::Catalog(format!("table {rest:?} does not exist")))?;
            let rows: Vec<Vec<Value>> = cols
                .into_iter()
                .map(|(n, ty)| vec![Value::text(n), Value::text(ty.name())])
                .collect();
            return Ok(QueryResult {
                schema: Schema::new(vec![
                    mduck_sql::Field { name: "column_name".into(), table: None, ty: LogicalType::Text },
                    mduck_sql::Field { name: "column_type".into(), table: None, ty: LogicalType::Text },
                ]),
                rows,
            });
        }
        let stmt = parse_timed(sql)?;
        let guard = ExecGuard::new(&self.limits.read());
        self.execute_logged(sql, &stmt, &guard)
    }

    /// Execute one SQL statement under a caller-supplied guard, so the
    /// caller can keep the [`mduck_sql::CancelHandle`] (to cancel from
    /// another thread) or spend one budget across several statements.
    pub fn execute_with_guard(&self, sql: &str, guard: &ExecGuard) -> SqlResult<QueryResult> {
        let stmt = parse_timed(sql)?;
        self.execute_logged(sql, &stmt, guard)
    }

    /// Shared body of the SQL-text entry points: register live progress,
    /// execute, then push one record to the query log. Statements that
    /// arrive pre-parsed ([`Database::execute_statement`]) skip the log —
    /// there is no SQL text to record for them.
    fn execute_logged(
        &self,
        sql: &str,
        stmt: &Statement,
        guard: &ExecGuard,
    ) -> SqlResult<QueryResult> {
        let id = mduck_obs::next_query_id();
        let sql_text = sql.trim().to_string();
        let progress = QueryProgress::begin(&sql_text);
        *self.current_progress.lock() = Some(Arc::clone(&progress));
        let start = Instant::now();
        // While the JSONL sink is live, SELECTs run under profiling so
        // slow statements can attach their EXPLAIN ANALYZE text.
        let (result, profile) = match stmt {
            Statement::Select(sel) if mduck_obs::query_log_sink_active() => {
                match catch_panics(|| {
                    self.run_analyzed(sel, guard, Some(Arc::clone(&progress)))
                }) {
                    Ok(pq) => (Ok(pq.result), Some(pq.explain)),
                    Err(e) => (Err(e), None),
                }
            }
            _ => (
                catch_panics(|| self.run_statement(stmt, guard, Some(Arc::clone(&progress)))),
                None,
            ),
        };
        let rows_returned = result.as_ref().map(|r| r.rows.len() as u64).unwrap_or(0);
        let error = result.as_ref().err().map(|e| e.to_string());
        self.finish_and_log(id, sql_text, &progress, start, guard, rows_returned, error, profile);
        result
    }

    /// Finish the progress handle and append the statement's query-log
    /// record. The profile text is attached only when the statement was at
    /// least as slow as `PRAGMA slow_query_ms`.
    #[allow(clippy::too_many_arguments)]
    fn finish_and_log(
        &self,
        id: u64,
        sql: String,
        progress: &QueryProgress,
        start: Instant,
        guard: &ExecGuard,
        rows_returned: u64,
        error: Option<String>,
        profile: Option<String>,
    ) {
        progress.finish();
        let duration = start.elapsed();
        let slow = duration.as_millis() as u64 >= mduck_obs::slow_threshold_ms();
        mduck_obs::log_query(mduck_obs::QueryLogRecord {
            id,
            engine: "vecdb",
            sql,
            duration_us: duration.as_micros() as u64,
            rows_returned,
            rows_scanned: guard.rows_scanned(),
            guard_trip: guard.trip_label(),
            mem_peak: guard.mem().peak(),
            threads: self.effective_threads() as u32,
            error,
            profile: if slow { profile } else { None },
        });
    }

    /// Execute a `;`-separated script, returning the last result.
    pub fn execute_script(&self, sql: &str) -> SqlResult<QueryResult> {
        let stmts = mduck_sql::parse_script(sql)?;
        let mut last = QueryResult::empty();
        for s in &stmts {
            last = self.execute_statement(s)?;
        }
        Ok(last)
    }

    /// Execute a parsed statement under the database's configured limits.
    pub fn execute_statement(&self, stmt: &Statement) -> SqlResult<QueryResult> {
        let guard = ExecGuard::new(&self.limits.read());
        self.execute_statement_guarded(stmt, &guard)
    }

    /// Execute a parsed statement under a caller-supplied guard.
    ///
    /// This is the engine's no-panic boundary: any panic that escapes the
    /// executor (a bug, by contract) is caught here and surfaced as
    /// [`SqlError::Internal`] instead of unwinding into the host process.
    pub fn execute_statement_guarded(
        &self,
        stmt: &Statement,
        guard: &ExecGuard,
    ) -> SqlResult<QueryResult> {
        catch_panics(|| self.run_statement(stmt, guard, None))
    }

    fn run_statement(
        &self,
        stmt: &Statement,
        guard: &ExecGuard,
        progress: Option<Arc<QueryProgress>>,
    ) -> SqlResult<QueryResult> {
        match stmt {
            Statement::Select(sel) => {
                let m = mduck_obs::metrics();
                m.queries_executed.inc(1);
                m.active_queries.add(1);
                let _active = GaugeGuard;
                let _query_span = mduck_obs::span("vecdb.query");
                let registry = self.registry.read();
                let bind_start = Instant::now();
                let plan = {
                    let _s = mduck_obs::span("vecdb.bind");
                    let mut binder = Binder::new(&self.catalog, &registry);
                    binder.bind_select(sel)?
                };
                m.vecdb_bind_ns.observe(bind_start.elapsed().as_nanos() as u64);
                let ctx = EngineCtx::new(&self.catalog, &registry, guard)
                    .with_threads(self.effective_threads())
                    .with_progress(progress);
                let rows = if plan.from.is_empty() {
                    let _s = mduck_obs::span("vecdb.exec");
                    let exec_start = Instant::now();
                    let rows = execute_select(&ctx, &plan, &OuterStack::EMPTY)?;
                    m.vecdb_exec_ns.observe(exec_start.elapsed().as_nanos() as u64);
                    rows
                } else {
                    let plan_start = Instant::now();
                    let (tree, remaining) = {
                        let _s = mduck_obs::span("vecdb.plan");
                        plan_joins(&ctx, &plan)?
                    };
                    m.vecdb_plan_ns.observe(plan_start.elapsed().as_nanos() as u64);
                    let _s = mduck_obs::span("vecdb.exec");
                    let exec_start = Instant::now();
                    let rows = execute_select_planned(
                        &ctx,
                        &plan,
                        &tree,
                        &remaining,
                        &OuterStack::EMPTY,
                    )?;
                    m.vecdb_exec_ns.observe(exec_start.elapsed().as_nanos() as u64);
                    rows
                };
                Ok(QueryResult { schema: plan.output_schema, rows })
            }
            Statement::Explain { statement, analyze } => {
                let Statement::Select(sel) = statement.as_ref() else {
                    return Err(SqlError::Bind("EXPLAIN supports SELECT".into()));
                };
                let text = if *analyze {
                    self.run_analyzed(sel, guard, progress)?.explain
                } else {
                    let registry = self.registry.read();
                    let mut binder = Binder::new(&self.catalog, &registry);
                    let plan = binder.bind_select(sel)?;
                    let ctx = EngineCtx::new(&self.catalog, &registry, guard);
                    let (tree, remaining) = plan_joins(&ctx, &plan)?;
                    render_plan(&plan, &tree, &remaining)
                };
                Ok(QueryResult {
                    schema: Schema::new(vec![mduck_sql::Field {
                        name: "explain".into(),
                        table: None,
                        ty: LogicalType::Text,
                    }]),
                    rows: vec![vec![Value::text(text)]],
                })
            }
            Statement::Pragma { name, value } => self.run_pragma(name, value.as_ref()),
            Statement::CreateTable { name, columns, if_not_exists } => {
                let cols = {
                    let registry = self.registry.read();
                    let mut cols = Vec::with_capacity(columns.len());
                    for (cname, tname) in columns {
                        cols.push((cname.clone(), registry.resolve_type(tname)?));
                    }
                    cols
                };
                let needed = {
                    let _commit = self.commit_lock.lock();
                    // Pre-check so an IF NOT EXISTS no-op logs nothing
                    // and a name clash fails before the WAL sees it.
                    if self.catalog.table_schema(name).is_some() {
                        if *if_not_exists {
                            return Ok(QueryResult::empty());
                        }
                        return Err(SqlError::Catalog(format!("table {name:?} already exists")));
                    }
                    let needed = self.wal_append(&WalRecord::CreateTable {
                        name: name.to_ascii_lowercase(),
                        columns: cols.clone(),
                    })?;
                    self.catalog.create_table(name, cols, *if_not_exists)?;
                    needed
                };
                self.maybe_auto_checkpoint(needed);
                Ok(QueryResult::empty())
            }
            Statement::DropTable { name, if_exists } => {
                let needed = {
                    let _commit = self.commit_lock.lock();
                    if self.catalog.table_schema(name).is_none() {
                        if *if_exists {
                            return Ok(QueryResult::empty());
                        }
                        return Err(SqlError::Catalog(format!("table {name:?} does not exist")));
                    }
                    let needed = self
                        .wal_append(&WalRecord::DropTable { name: name.to_ascii_lowercase() })?;
                    self.catalog.drop_table(name, true)?;
                    needed
                };
                self.maybe_auto_checkpoint(needed);
                Ok(QueryResult::empty())
            }
            Statement::CreateIndex { name, table, method, column } => {
                let needed = {
                    let _commit = self.commit_lock.lock();
                    self.create_index(name, table, method, column)?;
                    let resolved = if method.is_empty() {
                        "TRTREE".to_string()
                    } else {
                        method.to_uppercase()
                    };
                    let record = WalRecord::CreateIndex {
                        name: name.clone(),
                        table: table.to_ascii_lowercase(),
                        method: resolved,
                        column: column.clone(),
                    };
                    match self.wal_append(&record) {
                        Ok(needed) => needed,
                        Err(e) => {
                            // Undo the in-memory index: dropping an
                            // access path is always safe, and the
                            // statement must not report failure while
                            // leaving the index behind.
                            if let Ok(t) = self.catalog.get(table) {
                                t.write().indexes.retain(|i| i.name() != name);
                            }
                            return Err(e);
                        }
                    }
                };
                self.maybe_auto_checkpoint(needed);
                Ok(QueryResult::empty())
            }
            Statement::Insert { table, columns, source } => {
                let (n, needed) = self.insert(table, columns.as_deref(), source, guard)?;
                self.maybe_auto_checkpoint(needed);
                Ok(QueryResult {
                    schema: Schema::new(vec![mduck_sql::Field {
                        name: "count".into(),
                        table: None,
                        ty: LogicalType::Int,
                    }]),
                    rows: vec![vec![Value::Int(n as i64)]],
                })
            }
            Statement::Update { table, sets, where_clause } => {
                let (n, needed) = self.update(table, sets, where_clause.as_ref(), guard)?;
                self.maybe_auto_checkpoint(needed);
                Ok(QueryResult {
                    schema: Schema::new(vec![mduck_sql::Field {
                        name: "count".into(),
                        table: None,
                        ty: LogicalType::Int,
                    }]),
                    rows: vec![vec![Value::Int(n as i64)]],
                })
            }
            Statement::Delete { table, where_clause } => {
                let (n, needed) = self.delete(table, where_clause.as_ref(), guard)?;
                self.maybe_auto_checkpoint(needed);
                Ok(QueryResult {
                    schema: Schema::new(vec![mduck_sql::Field {
                        name: "count".into(),
                        table: None,
                        ty: LogicalType::Int,
                    }]),
                    rows: vec![vec![Value::Int(n as i64)]],
                })
            }
            Statement::Checkpoint => {
                let ran = self.checkpoint()?;
                let (schema, rows) = mduck_sql::introspect::checkpoint_result(ran);
                Ok(QueryResult { schema, rows })
            }
        }
    }

    /// `PRAGMA threads [= N]` is an engine setting; everything else is
    /// shared introspection.
    fn run_pragma(&self, name: &str, value: Option<&PragmaValue>) -> SqlResult<QueryResult> {
        if name == "threads" {
            if let Some(v) = value {
                let v = v.as_int().ok_or_else(|| {
                    SqlError::Bind(format!("PRAGMA threads expects an integer, got {v:?}"))
                })?;
                if !(0..=MAX_THREADS as i64).contains(&v) {
                    return Err(SqlError::OutOfRange(format!(
                        "PRAGMA threads expects 0..={MAX_THREADS}, got {v}"
                    )));
                }
                self.set_threads(v as usize);
            }
            let (schema, rows) = mduck_sql::introspect::threads_result(self.effective_threads());
            return Ok(QueryResult { schema, rows });
        }
        if name == "memory_limit" {
            if let Some(v) = value {
                let limit = mduck_sql::introspect::parse_memory_limit(v)?;
                self.limits.write().memory_limit = limit;
            }
            let (schema, rows) =
                mduck_sql::introspect::memory_limit_result(self.limits.read().memory_limit);
            return Ok(QueryResult { schema, rows });
        }
        if name == "wal" {
            if let Some(v) = value {
                let path = match v {
                    PragmaValue::Str(s) => s.clone(),
                    PragmaValue::Int(n) => {
                        return Err(SqlError::Bind(format!(
                            "PRAGMA wal expects a path string, got {n}"
                        )))
                    }
                };
                let trimmed = path.trim();
                if trimmed.is_empty()
                    || trimmed.eq_ignore_ascii_case("off")
                    || trimmed.eq_ignore_ascii_case("none")
                {
                    self.detach_wal();
                } else {
                    self.attach_wal(trimmed)?;
                }
            }
            let shown = self.wal().map(|m| m.wal_path().display().to_string());
            let (schema, rows) = mduck_sql::introspect::wal_result(shown);
            return Ok(QueryResult { schema, rows });
        }
        if name == "wal_autocheckpoint" {
            if let Some(v) = value {
                let n = v.as_int().ok_or_else(|| {
                    SqlError::Bind(format!(
                        "PRAGMA wal_autocheckpoint expects a byte count, got {v:?}"
                    ))
                })?;
                if n < 0 {
                    return Err(SqlError::OutOfRange(format!(
                        "PRAGMA wal_autocheckpoint expects a non-negative byte count, got {n}"
                    )));
                }
                match self.wal() {
                    Some(m) => m.set_auto_checkpoint(n as u64),
                    None => {
                        return Err(SqlError::execution(
                            "no WAL attached; PRAGMA wal='path' first",
                        ))
                    }
                }
            }
            let current = self.wal().map(|m| m.auto_checkpoint()).unwrap_or(0);
            let (schema, rows) = mduck_sql::introspect::wal_autocheckpoint_result(current);
            return Ok(QueryResult { schema, rows });
        }
        match mduck_sql::introspect::pragma(name, value)? {
            Some((schema, rows)) => Ok(QueryResult { schema, rows }),
            None => Err(SqlError::Catalog(format!("unknown pragma {name:?}"))),
        }
    }

    /// Execute a SELECT with per-operator profiling enabled and return the
    /// result alongside the analyzed plan rendering and a flattened
    /// per-operator breakdown (the programmatic `EXPLAIN ANALYZE`).
    pub fn execute_analyzed(&self, sql: &str) -> SqlResult<ProfiledQuery> {
        let stmt = parse_timed(sql)?;
        let Statement::Select(sel) = stmt else {
            return Err(SqlError::Bind("execute_analyzed supports SELECT".into()));
        };
        let guard = ExecGuard::new(&self.limits.read());
        let id = mduck_obs::next_query_id();
        let sql_text = sql.trim().to_string();
        let progress = QueryProgress::begin(&sql_text);
        *self.current_progress.lock() = Some(Arc::clone(&progress));
        let start = Instant::now();
        let result = catch_panics(|| self.run_analyzed(&sel, &guard, Some(Arc::clone(&progress))));
        let (rows_returned, error, profile) = match &result {
            Ok(pq) => (pq.result.rows.len() as u64, None, Some(pq.explain.clone())),
            Err(e) => (0, Some(e.to_string()), None),
        };
        self.finish_and_log(id, sql_text, &progress, start, &guard, rows_returned, error, profile);
        result
    }

    /// Shared body of `EXPLAIN ANALYZE` and [`Database::execute_analyzed`]:
    /// plan once, execute the planned tree under profiling, render actuals.
    fn run_analyzed(
        &self,
        sel: &SelectStmt,
        guard: &ExecGuard,
        progress: Option<Arc<QueryProgress>>,
    ) -> SqlResult<ProfiledQuery> {
        let m = mduck_obs::metrics();
        m.queries_executed.inc(1);
        m.active_queries.add(1);
        let _active = GaugeGuard;
        let _query_span = mduck_obs::span("vecdb.query");
        let registry = self.registry.read();
        let bind_start = Instant::now();
        let plan = {
            let _s = mduck_obs::span("vecdb.bind");
            let mut binder = Binder::new(&self.catalog, &registry);
            binder.bind_select(sel)?
        };
        m.vecdb_bind_ns.observe(bind_start.elapsed().as_nanos() as u64);
        let mut ctx = EngineCtx::new(&self.catalog, &registry, guard)
            .with_threads(self.effective_threads())
            .with_progress(progress);
        ctx.enable_profiling();
        let plan_start = Instant::now();
        let (tree, remaining) = {
            let _s = mduck_obs::span("vecdb.plan");
            plan_joins(&ctx, &plan)?
        };
        m.vecdb_plan_ns.observe(plan_start.elapsed().as_nanos() as u64);
        let exec_start = Instant::now();
        let rows = {
            let _s = mduck_obs::span("vecdb.exec");
            execute_select_planned(&ctx, &plan, &tree, &remaining, &OuterStack::EMPTY)?
        };
        let exec_elapsed = exec_start.elapsed();
        m.vecdb_exec_ns.observe(exec_elapsed.as_nanos() as u64);
        let profile = ctx
            .profile
            .as_ref()
            .ok_or_else(|| SqlError::internal("profiling sink disappeared"))?;
        let total_ms = exec_elapsed.as_secs_f64() * 1e3;
        let analyze = AnalyzeData {
            profile,
            plan_key: plan_key(&plan),
            total_ms,
            result_rows: rows.len(),
        };
        let explain = render_plan_analyzed(&plan, &tree, &remaining, &analyze);
        let operators = op_breakdown(&tree, profile);
        let stages = stage_breakdown(plan_key(&plan), profile);
        Ok(ProfiledQuery {
            result: QueryResult { schema: plan.output_schema.clone(), rows },
            explain,
            operators,
            stages,
            total_ms,
            mem_peak: guard.mem().peak(),
        })
    }

    /// `CREATE INDEX ... USING <method>(col)`: the data-first bulk path
    /// (§4.2.2).
    fn create_index(&self, name: &str, table: &str, method: &str, column: &str) -> SqlResult<()> {
        let method = if method.is_empty() { "TRTREE".to_string() } else { method.to_uppercase() };
        let index_type = self
            .index_types
            .read()
            .get(&method)
            .ok_or_else(|| SqlError::Catalog(format!("unknown index type {method:?}")))?;
        let t = self.catalog.get(table)?;
        let mut t = t.write();
        let col = t
            .column_index(column)
            .ok_or_else(|| SqlError::Catalog(format!("no column {column:?} in {table:?}")))?;
        let ty = t.columns[col].ty.clone();
        if !index_type.can_index(&ty) {
            return Err(SqlError::Catalog(format!(
                "index method {method} cannot index type {}",
                ty.name()
            )));
        }
        if t.indexes.iter().any(|i| i.name() == name) {
            return Err(SqlError::Catalog(format!("index {name:?} already exists")));
        }
        let existing = t.column_values(col);
        let index = index_type.create(name, col, &ty, &existing)?;
        t.indexes.push(index);
        Ok(())
    }

    /// INSERT body; returns `(rows inserted, auto-checkpoint due)`.
    fn insert(
        &self,
        table: &str,
        columns: Option<&[String]>,
        source: &InsertSource,
        guard: &ExecGuard,
    ) -> SqlResult<(usize, bool)> {
        let registry = self.registry.read();
        // Compute the incoming rows first (they may SELECT from the target).
        let incoming: Vec<Vec<Value>> = match source {
            InsertSource::Values(rows) => {
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    let mut vals = Vec::with_capacity(row.len());
                    for e in row {
                        let bound =
                            mduck_sql::binder::bind_constant_expr(e, &self.catalog, &registry)?;
                        vals.push(eval(
                            &bound,
                            &[],
                            &OuterStack::EMPTY,
                            &mduck_sql::eval::NoSubqueries,
                        )?);
                    }
                    out.push(vals);
                }
                out
            }
            InsertSource::Select(sel) => {
                let mut binder = Binder::new(&self.catalog, &registry);
                let plan = binder.bind_select(sel)?;
                let ctx = EngineCtx::new(&self.catalog, &registry, guard)
                    .with_threads(self.effective_threads());
                execute_select(&ctx, &plan, &OuterStack::EMPTY)?
            }
        };
        guard.check_rows(incoming.len())?;
        let _commit = self.commit_lock.lock();
        let t = self.catalog.get(table)?;
        let mut t = t.write();
        let rows = reorder_for_insert(&t, columns, incoming)?;
        let rows = coerce_rows(&registry, &t.column_types(), rows)?;
        let n = rows.len();
        // Apply (atomic — see `Table::append_rows`), then log. On a log
        // failure the append is undone: the statement must not report
        // failure while leaving its rows behind, and the WAL must not
        // miss rows a later recovery would then silently drop.
        let pre_rows = t.row_count();
        t.append_rows(&rows)?;
        let needed = match self.wal_append(&WalRecord::Insert { table: t.name.clone(), rows }) {
            Ok(needed) => needed,
            Err(e) => {
                truncate_table(&mut t, pre_rows, &self.index_types.read())?;
                return Err(e);
            }
        };
        Ok((n, needed))
    }

    /// UPDATE body; returns `(rows updated, auto-checkpoint due)`.
    /// Stage-log-apply: new column vectors and rebuilt indexes are fully
    /// staged first, the WAL record is appended, and only then is
    /// anything assigned — the assignment cannot fail, so a trip or an
    /// I/O error anywhere leaves the table untouched.
    fn update(
        &self,
        table: &str,
        sets: &[(String, mduck_sql::Expr)],
        where_clause: Option<&mduck_sql::Expr>,
        guard: &ExecGuard,
    ) -> SqlResult<(usize, bool)> {
        let registry = self.registry.read();
        let t_arc = self.catalog.get(table)?;
        // Bind against the table schema.
        let schema_cols = self
            .catalog
            .table_schema(table)
            .ok_or_else(|| SqlError::Catalog(format!("table {table:?} does not exist")))?;
        let schema = Schema::new(
            schema_cols
                .iter()
                .map(|(n, ty)| mduck_sql::Field {
                    name: n.clone(),
                    table: Some(table.to_ascii_lowercase()),
                    ty: ty.clone(),
                })
                .collect(),
        );
        let mut binder = Binder::new(&self.catalog, &registry);
        let bound_sets: SqlResult<Vec<(usize, mduck_sql::BoundExpr)>> = sets
            .iter()
            .map(|(col, e)| {
                let idx = schema
                    .resolve(None, &col.to_ascii_lowercase())
                    .map_err(|_| SqlError::Catalog(format!("no column {col:?}")))?;
                Ok((idx, binder.bind_expr(e, &schema)?))
            })
            .collect();
        let bound_sets = bound_sets?;
        let bound_where = match where_clause {
            Some(w) => Some(binder.bind_expr(w, &schema)?),
            None => None,
        };
        let _commit = self.commit_lock.lock();
        let mut t = t_arc.write();
        let n_rows = t.row_count();
        let mut updated = 0usize;
        let no_sub = mduck_sql::eval::NoSubqueries;
        // Gather replacements per column, then rebuild each affected column
        // once (columns are immutable vectors; cell-wise rebuilds would be
        // quadratic).
        let mut replacements: Vec<Vec<(usize, Value)>> = vec![Vec::new(); bound_sets.len()];
        for i in 0..n_rows {
            guard.check_rows(1)?;
            let row = t.row(i);
            if let Some(w) = &bound_where {
                if !matches!(eval(w, &row, &OuterStack::EMPTY, &no_sub)?, Value::Bool(true)) {
                    continue;
                }
            }
            for (k, (_, e)) in bound_sets.iter().enumerate() {
                let v = eval(e, &row, &OuterStack::EMPTY, &no_sub)?;
                replacements[k].push((i, v));
            }
            updated += 1;
        }
        if updated == 0 {
            return Ok((0, false));
        }
        // Stage the new column vectors without touching the table.
        let mut staged: Vec<(usize, ColumnData)> = Vec::new();
        for (k, (col, _)) in bound_sets.iter().enumerate() {
            if replacements[k].is_empty() {
                continue;
            }
            staged.push((*col, build_column_with_replacements(&t, *col, &replacements[k])?));
        }
        // Stage rebuilt indexes over the updated columns, reading their
        // values from the staged vectors.
        let set_cols: Vec<usize> = bound_sets.iter().map(|(c, _)| *c).collect();
        let staged_indexes =
            stage_index_rebuilds(&t, &set_cols, &self.index_types.read(), |col| {
                match staged.iter().find(|(c, _)| *c == col) {
                    Some((_, nc)) => (0..nc.len()).map(|i| nc.get(i)).collect(),
                    None => t.column_values(col),
                }
            })?;
        // Log, then the infallible assignment.
        let cells: Vec<(u64, u64, Value)> = bound_sets
            .iter()
            .enumerate()
            .flat_map(|(k, (col, _))| {
                replacements[k]
                    .iter()
                    .map(move |(row, v)| (*row as u64, *col as u64, v.clone()))
            })
            .collect();
        let needed = self.wal_append(&WalRecord::Update { table: t.name.clone(), cells })?;
        for (col, nc) in staged {
            t.columns[col] = nc;
        }
        for (i, idx) in staged_indexes {
            t.indexes[i] = idx;
        }
        Ok((updated, needed))
    }

    /// DELETE body; returns `(rows deleted, auto-checkpoint due)`.
    /// Stage-log-apply, like [`Database::update`].
    fn delete(
        &self,
        table: &str,
        where_clause: Option<&mduck_sql::Expr>,
        guard: &ExecGuard,
    ) -> SqlResult<(usize, bool)> {
        let registry = self.registry.read();
        let schema_cols = self
            .catalog
            .table_schema(table)
            .ok_or_else(|| SqlError::Catalog(format!("table {table:?} does not exist")))?;
        let schema = Schema::new(
            schema_cols
                .iter()
                .map(|(n, ty)| mduck_sql::Field {
                    name: n.clone(),
                    table: Some(table.to_ascii_lowercase()),
                    ty: ty.clone(),
                })
                .collect(),
        );
        let mut binder = Binder::new(&self.catalog, &registry);
        let bound_where = match where_clause {
            Some(w) => Some(binder.bind_expr(w, &schema)?),
            None => None,
        };
        let _commit = self.commit_lock.lock();
        let t_arc = self.catalog.get(table)?;
        let mut t = t_arc.write();
        let no_sub = mduck_sql::eval::NoSubqueries;
        let mut keep: Vec<usize> = Vec::new();
        let mut deleted_rows: Vec<u64> = Vec::new();
        let n_rows = t.row_count();
        for i in 0..n_rows {
            guard.check_rows(1)?;
            let row = t.row(i);
            let delete = match &bound_where {
                Some(w) => {
                    matches!(eval(w, &row, &OuterStack::EMPTY, &no_sub)?, Value::Bool(true))
                }
                None => true,
            };
            if delete {
                deleted_rows.push(i as u64);
            } else {
                keep.push(i);
            }
        }
        let deleted = deleted_rows.len();
        if deleted == 0 {
            return Ok((0, false));
        }
        // Stage the surviving columns and the rebuilt indexes, log, then
        // assign (infallible).
        let new_columns: Vec<ColumnData> = t.columns.iter().map(|c| c.gather(&keep)).collect();
        let all_cols: Vec<usize> = (0..t.columns.len()).collect();
        let staged_indexes =
            stage_index_rebuilds(&t, &all_cols, &self.index_types.read(), |col| {
                (0..new_columns[col].len()).map(|i| new_columns[col].get(i)).collect()
            })?;
        let needed =
            self.wal_append(&WalRecord::Delete { table: t.name.clone(), rows: deleted_rows })?;
        t.columns = new_columns;
        for (i, idx) in staged_indexes {
            t.indexes[i] = idx;
        }
        Ok((deleted, needed))
    }
}

/// A profiled SELECT: result, analyzed-plan text, per-operator actuals.
#[derive(Debug, Clone)]
pub struct ProfiledQuery {
    pub result: QueryResult,
    /// The `EXPLAIN ANALYZE` rendering.
    pub explain: String,
    /// Flattened (preorder) per-operator actuals of the join/scan tree.
    pub operators: Vec<OpBreakdown>,
    /// Post-join stage actuals (aggregate, projection, order_by, ...) of
    /// the top-level plan.
    pub stages: Vec<StageBreakdown>,
    /// End-to-end execution wall time.
    pub total_ms: f64,
    /// Peak bytes tracked by the statement's memory scope.
    pub mem_peak: u64,
}

/// Decrements the active-query gauge on drop (error paths included).
struct GaugeGuard;

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        mduck_obs::metrics().active_queries.add(-1);
    }
}

/// Parse one statement, feeding the parse-phase latency histogram.
fn parse_timed(sql: &str) -> SqlResult<Statement> {
    let _s = mduck_obs::span("vecdb.parse");
    let start = Instant::now();
    let stmt = parse_statement(sql);
    mduck_obs::metrics().vecdb_parse_ns.observe(start.elapsed().as_nanos() as u64);
    stmt
}

/// The no-panic backstop: a panic escaping the executor is a bug by
/// contract, but it must degrade to an error, not unwind into (and
/// possibly abort) the host process. The interior locks recover from
/// poisoning (see `mduck-sync`), so catching here leaves the database
/// usable. Stack overflows and `abort()` are not unwinds and cannot be
/// caught — the parser's depth limit prevents the former up front.
fn catch_panics<T>(f: impl FnOnce() -> SqlResult<T>) -> SqlResult<T> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            Err(SqlError::internal(format!("executor panicked: {msg}")))
        }
    }
}

/// Coerce incoming rows to the table's column types through registered
/// casts (SQL's implicit assignment casts: VALUES ('2025-01-01') into a
/// TIMESTAMPTZ column, text literals into UDT columns, ...).
fn coerce_rows(
    registry: &Registry,
    types: &[mduck_sql::LogicalType],
    rows: Vec<Vec<Value>>,
) -> SqlResult<Vec<Vec<Value>>> {
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let mut coerced = Vec::with_capacity(row.len());
        for (v, ty) in row.into_iter().zip(types) {
            if v.is_null() || &v.logical_type() == ty || v.logical_type().coercible_to(ty) {
                coerced.push(v);
            } else if let Some(cast) = registry.resolve_cast(&v.logical_type(), ty) {
                coerced.push(cast(&[v])?);
            } else {
                coerced.push(v); // let column storage report the mismatch
            }
        }
        out.push(coerced);
    }
    Ok(out)
}

/// Case-insensitive keyword-prefix stripper for utility statements.
/// Checked slicing: `kw.len()` may fall inside a multi-byte character of
/// arbitrary input, where `&s[..n]` would panic.
fn strip_keyword<'a>(s: &'a str, kw: &str) -> Option<&'a str> {
    let prefix = s.get(..kw.len())?;
    if prefix.eq_ignore_ascii_case(kw) && s.as_bytes().get(kw.len())?.is_ascii_whitespace() {
        s.get(kw.len() + 1..)
    } else {
        None
    }
}

/// Build one column with the (sorted-by-construction) replacements
/// applied, without touching the table — the staging half of an atomic
/// UPDATE.
fn build_column_with_replacements(
    t: &Table,
    col: usize,
    replacements: &[(usize, Value)],
) -> SqlResult<ColumnData> {
    let ty = t.columns[col].ty.clone();
    let mut nc = ColumnData::new(&ty);
    let mut next = 0usize;
    for i in 0..t.columns[col].len() {
        if next < replacements.len() && replacements[next].0 == i {
            nc.push(&replacements[next].1)?;
            next += 1;
        } else {
            nc.push(&t.columns[col].get(i))?;
        }
    }
    Ok(nc)
}

/// Build replacement indexes for every index over one of `cols`, reading
/// the indexed values through `values_of` (so callers can point it at
/// staged columns that are not in the table yet). Returns
/// `(index slot, new index)` pairs; assigning them cannot fail.
fn stage_index_rebuilds(
    t: &Table,
    cols: &[usize],
    index_types: &IndexTypeRegistry,
    values_of: impl Fn(usize) -> Vec<Value>,
) -> SqlResult<Vec<(usize, Box<dyn crate::index::TableIndex>)>> {
    let mut out = Vec::new();
    for (i, idx) in t.indexes.iter().enumerate() {
        if !cols.contains(&idx.column()) {
            continue;
        }
        let (name, method, col) = (idx.name().to_string(), idx.method().to_string(), idx.column());
        let ty = t.columns[col].ty.clone();
        let it = index_types
            .get(&method)
            .ok_or_else(|| SqlError::Catalog(format!("index type {method} vanished")))?;
        out.push((i, it.create(&name, col, &ty, &values_of(col))?));
    }
    Ok(out)
}

fn rebuild_indexes_for_columns(
    t: &mut Table,
    cols: &[usize],
    index_types: &IndexTypeRegistry,
) -> SqlResult<()> {
    let staged = stage_index_rebuilds(t, cols, index_types, |col| t.column_values(col))?;
    for (i, idx) in staged {
        t.indexes[i] = idx;
    }
    Ok(())
}

/// Roll a table back to `len` rows: truncate every column and rebuild
/// every attached index (they may hold entries for the removed rows).
fn truncate_table(t: &mut Table, len: usize, index_types: &IndexTypeRegistry) -> SqlResult<()> {
    for c in &mut t.columns {
        c.truncate(len);
    }
    let all: Vec<usize> = (0..t.columns.len()).collect();
    rebuild_indexes_for_columns(t, &all, index_types)
}

fn reorder_for_insert(
    t: &Table,
    columns: Option<&[String]>,
    incoming: Vec<Vec<Value>>,
) -> SqlResult<Vec<Vec<Value>>> {
    match columns {
        None => Ok(incoming),
        Some(cols) => {
            let mut mapping = Vec::with_capacity(cols.len());
            for c in cols {
                let idx = t
                    .column_index(c)
                    .ok_or_else(|| SqlError::Catalog(format!("no column {c:?}")))?;
                mapping.push(idx);
            }
            let width = t.columns.len();
            let mut out = Vec::with_capacity(incoming.len());
            for row in incoming {
                if row.len() != mapping.len() {
                    return Err(SqlError::execution("INSERT arity mismatch"));
                }
                let mut full = vec![Value::Null; width];
                for (v, &dst) in row.into_iter().zip(&mapping) {
                    full[dst] = v;
                }
                out.push(full);
            }
            Ok(out)
        }
    }
}
