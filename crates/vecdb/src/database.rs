//! The embeddable database instance: the `duckdb.Connection` analogue.

use std::sync::Arc;
use std::time::Instant;

use mduck_obs::QueryProgress;
use mduck_sync::{Mutex, RwLock};

use mduck_sql::ast::{InsertSource, SelectStmt, Statement};
use mduck_sql::eval::{eval, OuterStack};
use mduck_sql::{
    parse_statement, Binder, Catalog, ExecGuard, ExecLimits, LogicalType, PragmaValue, Registry,
    Schema, SqlError, SqlResult, Value,
};

use crate::catalog::{DbCatalog, Table};
use crate::exec::{execute_select, execute_select_planned, plan_joins, plan_key, EngineCtx};
use crate::explain::{
    op_breakdown, render_plan, render_plan_analyzed, stage_breakdown, AnalyzeData, OpBreakdown,
    StageBreakdown,
};
use crate::index::IndexTypeRegistry;

/// Hard ceiling on the worker pool size (sanity bound for PRAGMA input).
const MAX_THREADS: usize = 256;

/// A query result: output schema plus materialized rows.
#[derive(Debug, Clone)]
pub struct QueryResult {
    pub schema: Schema,
    pub rows: Vec<Vec<Value>>,
}

impl QueryResult {
    pub fn empty() -> Self {
        QueryResult { schema: Schema::default(), rows: Vec::new() }
    }

    /// Column names.
    pub fn column_names(&self) -> Vec<&str> {
        self.schema.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Single scalar convenience accessor.
    pub fn scalar(&self) -> SqlResult<&Value> {
        self.rows
            .first()
            .and_then(|r| r.first())
            .ok_or_else(|| SqlError::execution("query returned no rows"))
    }

    /// ASCII table rendering for examples and demos.
    pub fn to_table_string(&self) -> String {
        let mut widths: Vec<usize> =
            self.schema.fields.iter().map(|f| f.name.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        let header: Vec<String> = self
            .schema
            .fields
            .iter()
            .enumerate()
            .map(|(i, f)| format!("{:width$}", f.name, width = widths[i]))
            .collect();
        out.push_str(&header.join(" │ "));
        out.push('\n');
        out.push_str(&widths.iter().map(|w| "─".repeat(*w)).collect::<Vec<_>>().join("─┼─"));
        out.push('\n');
        for row in rendered {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect();
            out.push_str(&line.join(" │ "));
            out.push('\n');
        }
        out
    }
}

/// An in-process database instance (the DuckDB substrate).
///
/// Extensions install themselves by mutating [`Database::registry`] and
/// [`Database::index_types`] at load time, exactly as MobilityDuck
/// registers its types, functions, casts, operators, and the TRTREE index
/// type against DuckDB (§3.3–§4.1).
pub struct Database {
    pub catalog: DbCatalog,
    registry: Arc<RwLock<Registry>>,
    index_types: Arc<RwLock<IndexTypeRegistry>>,
    limits: RwLock<ExecLimits>,
    /// Worker threads for morsel-driven execution; 0 = auto-detect.
    threads: std::sync::atomic::AtomicUsize,
    /// Progress handle of the most recent SQL-text statement, pollable
    /// from other threads via [`Database::progress`]. Kept after the
    /// statement finishes (reporting `1.0`) until the next one replaces
    /// it.
    current_progress: Mutex<Option<Arc<QueryProgress>>>,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// A fresh instance with the built-in SQL surface.
    pub fn new() -> Self {
        Database {
            catalog: DbCatalog::default(),
            registry: Arc::new(RwLock::new(Registry::with_builtins())),
            index_types: Arc::new(RwLock::new(IndexTypeRegistry::default())),
            limits: RwLock::new(ExecLimits::default()),
            threads: std::sync::atomic::AtomicUsize::new(0),
            current_progress: Mutex::new(None),
        }
    }

    /// Completion estimate of the most recent [`Database::execute`] /
    /// [`Database::execute_analyzed`] statement: monotonically
    /// non-decreasing in `[0, 1]`, exactly `1.0` once finished, `None`
    /// before any statement ran. Safe to poll from another thread while
    /// the statement is still executing.
    pub fn progress(&self) -> Option<f64> {
        self.current_progress.lock().as_ref().map(|p| p.fraction())
    }

    /// Set the worker-thread count for morsel-driven execution; `0`
    /// restores auto-detection. Equivalent to `PRAGMA threads = N`.
    pub fn set_threads(&self, n: usize) {
        self.threads.store(n.min(MAX_THREADS), std::sync::atomic::Ordering::Relaxed);
    }

    /// The configured thread count (`0` = auto-detect).
    pub fn threads(&self) -> usize {
        self.threads.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The thread count statements actually execute with: the configured
    /// value, or (when auto) the `MDUCK_THREADS` environment variable,
    /// or `std::thread::available_parallelism`.
    pub fn effective_threads(&self) -> usize {
        let configured = self.threads();
        if configured > 0 {
            return configured;
        }
        if let Ok(v) = std::env::var("MDUCK_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n.min(MAX_THREADS);
                }
            }
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(MAX_THREADS)
    }

    /// Set the resource limits applied to every subsequent statement.
    pub fn set_exec_limits(&self, limits: ExecLimits) {
        *self.limits.write() = limits;
    }

    /// The resource limits currently in force.
    pub fn exec_limits(&self) -> ExecLimits {
        self.limits.read().clone()
    }

    /// Mutate the function/type/cast registry (extension load hook).
    pub fn registry_mut(&self) -> mduck_sync::RwLockWriteGuard<'_, Registry> {
        self.registry.write()
    }

    pub fn registry(&self) -> mduck_sync::RwLockReadGuard<'_, Registry> {
        self.registry.read()
    }

    /// Mutate the index-type registry (extension load hook).
    pub fn index_types_mut(&self) -> mduck_sync::RwLockWriteGuard<'_, IndexTypeRegistry> {
        self.index_types.write()
    }

    /// Execute one SQL statement. `SHOW TABLES` and `DESCRIBE <table>`
    /// are handled as utility statements, as in DuckDB's shell.
    pub fn execute(&self, sql: &str) -> SqlResult<QueryResult> {
        let trimmed = sql.trim().trim_end_matches(';').trim();
        if trimmed.eq_ignore_ascii_case("show tables") {
            let rows: Vec<Vec<Value>> = self
                .catalog
                .table_names()
                .into_iter()
                .map(|n| vec![Value::text(n)])
                .collect();
            return Ok(QueryResult {
                schema: Schema::new(vec![mduck_sql::Field {
                    name: "name".into(),
                    table: None,
                    ty: LogicalType::Text,
                }]),
                rows,
            });
        }
        if let Some(rest) = strip_keyword(trimmed, "describe") {
            let cols = self
                .catalog
                .table_schema(rest.trim())
                .ok_or_else(|| SqlError::Catalog(format!("table {rest:?} does not exist")))?;
            let rows: Vec<Vec<Value>> = cols
                .into_iter()
                .map(|(n, ty)| vec![Value::text(n), Value::text(ty.name())])
                .collect();
            return Ok(QueryResult {
                schema: Schema::new(vec![
                    mduck_sql::Field { name: "column_name".into(), table: None, ty: LogicalType::Text },
                    mduck_sql::Field { name: "column_type".into(), table: None, ty: LogicalType::Text },
                ]),
                rows,
            });
        }
        let stmt = parse_timed(sql)?;
        let guard = ExecGuard::new(&self.limits.read());
        self.execute_logged(sql, &stmt, &guard)
    }

    /// Execute one SQL statement under a caller-supplied guard, so the
    /// caller can keep the [`mduck_sql::CancelHandle`] (to cancel from
    /// another thread) or spend one budget across several statements.
    pub fn execute_with_guard(&self, sql: &str, guard: &ExecGuard) -> SqlResult<QueryResult> {
        let stmt = parse_timed(sql)?;
        self.execute_logged(sql, &stmt, guard)
    }

    /// Shared body of the SQL-text entry points: register live progress,
    /// execute, then push one record to the query log. Statements that
    /// arrive pre-parsed ([`Database::execute_statement`]) skip the log —
    /// there is no SQL text to record for them.
    fn execute_logged(
        &self,
        sql: &str,
        stmt: &Statement,
        guard: &ExecGuard,
    ) -> SqlResult<QueryResult> {
        let id = mduck_obs::next_query_id();
        let sql_text = sql.trim().to_string();
        let progress = QueryProgress::begin(&sql_text);
        *self.current_progress.lock() = Some(Arc::clone(&progress));
        let start = Instant::now();
        // While the JSONL sink is live, SELECTs run under profiling so
        // slow statements can attach their EXPLAIN ANALYZE text.
        let (result, profile) = match stmt {
            Statement::Select(sel) if mduck_obs::query_log_sink_active() => {
                match catch_panics(|| {
                    self.run_analyzed(sel, guard, Some(Arc::clone(&progress)))
                }) {
                    Ok(pq) => (Ok(pq.result), Some(pq.explain)),
                    Err(e) => (Err(e), None),
                }
            }
            _ => (
                catch_panics(|| self.run_statement(stmt, guard, Some(Arc::clone(&progress)))),
                None,
            ),
        };
        let rows_returned = result.as_ref().map(|r| r.rows.len() as u64).unwrap_or(0);
        let error = result.as_ref().err().map(|e| e.to_string());
        self.finish_and_log(id, sql_text, &progress, start, guard, rows_returned, error, profile);
        result
    }

    /// Finish the progress handle and append the statement's query-log
    /// record. The profile text is attached only when the statement was at
    /// least as slow as `PRAGMA slow_query_ms`.
    #[allow(clippy::too_many_arguments)]
    fn finish_and_log(
        &self,
        id: u64,
        sql: String,
        progress: &QueryProgress,
        start: Instant,
        guard: &ExecGuard,
        rows_returned: u64,
        error: Option<String>,
        profile: Option<String>,
    ) {
        progress.finish();
        let duration = start.elapsed();
        let slow = duration.as_millis() as u64 >= mduck_obs::slow_threshold_ms();
        mduck_obs::log_query(mduck_obs::QueryLogRecord {
            id,
            engine: "vecdb",
            sql,
            duration_us: duration.as_micros() as u64,
            rows_returned,
            rows_scanned: guard.rows_scanned(),
            guard_trip: guard.trip_label(),
            mem_peak: guard.mem().peak(),
            threads: self.effective_threads() as u32,
            error,
            profile: if slow { profile } else { None },
        });
    }

    /// Execute a `;`-separated script, returning the last result.
    pub fn execute_script(&self, sql: &str) -> SqlResult<QueryResult> {
        let stmts = mduck_sql::parse_script(sql)?;
        let mut last = QueryResult::empty();
        for s in &stmts {
            last = self.execute_statement(s)?;
        }
        Ok(last)
    }

    /// Execute a parsed statement under the database's configured limits.
    pub fn execute_statement(&self, stmt: &Statement) -> SqlResult<QueryResult> {
        let guard = ExecGuard::new(&self.limits.read());
        self.execute_statement_guarded(stmt, &guard)
    }

    /// Execute a parsed statement under a caller-supplied guard.
    ///
    /// This is the engine's no-panic boundary: any panic that escapes the
    /// executor (a bug, by contract) is caught here and surfaced as
    /// [`SqlError::Internal`] instead of unwinding into the host process.
    pub fn execute_statement_guarded(
        &self,
        stmt: &Statement,
        guard: &ExecGuard,
    ) -> SqlResult<QueryResult> {
        catch_panics(|| self.run_statement(stmt, guard, None))
    }

    fn run_statement(
        &self,
        stmt: &Statement,
        guard: &ExecGuard,
        progress: Option<Arc<QueryProgress>>,
    ) -> SqlResult<QueryResult> {
        match stmt {
            Statement::Select(sel) => {
                let m = mduck_obs::metrics();
                m.queries_executed.inc(1);
                m.active_queries.add(1);
                let _active = GaugeGuard;
                let _query_span = mduck_obs::span("vecdb.query");
                let registry = self.registry.read();
                let bind_start = Instant::now();
                let plan = {
                    let _s = mduck_obs::span("vecdb.bind");
                    let mut binder = Binder::new(&self.catalog, &registry);
                    binder.bind_select(sel)?
                };
                m.vecdb_bind_ns.observe(bind_start.elapsed().as_nanos() as u64);
                let ctx = EngineCtx::new(&self.catalog, &registry, guard)
                    .with_threads(self.effective_threads())
                    .with_progress(progress);
                let rows = if plan.from.is_empty() {
                    let _s = mduck_obs::span("vecdb.exec");
                    let exec_start = Instant::now();
                    let rows = execute_select(&ctx, &plan, &OuterStack::EMPTY)?;
                    m.vecdb_exec_ns.observe(exec_start.elapsed().as_nanos() as u64);
                    rows
                } else {
                    let plan_start = Instant::now();
                    let (tree, remaining) = {
                        let _s = mduck_obs::span("vecdb.plan");
                        plan_joins(&ctx, &plan)?
                    };
                    m.vecdb_plan_ns.observe(plan_start.elapsed().as_nanos() as u64);
                    let _s = mduck_obs::span("vecdb.exec");
                    let exec_start = Instant::now();
                    let rows = execute_select_planned(
                        &ctx,
                        &plan,
                        &tree,
                        &remaining,
                        &OuterStack::EMPTY,
                    )?;
                    m.vecdb_exec_ns.observe(exec_start.elapsed().as_nanos() as u64);
                    rows
                };
                Ok(QueryResult { schema: plan.output_schema, rows })
            }
            Statement::Explain { statement, analyze } => {
                let Statement::Select(sel) = statement.as_ref() else {
                    return Err(SqlError::Bind("EXPLAIN supports SELECT".into()));
                };
                let text = if *analyze {
                    self.run_analyzed(sel, guard, progress)?.explain
                } else {
                    let registry = self.registry.read();
                    let mut binder = Binder::new(&self.catalog, &registry);
                    let plan = binder.bind_select(sel)?;
                    let ctx = EngineCtx::new(&self.catalog, &registry, guard);
                    let (tree, remaining) = plan_joins(&ctx, &plan)?;
                    render_plan(&plan, &tree, &remaining)
                };
                Ok(QueryResult {
                    schema: Schema::new(vec![mduck_sql::Field {
                        name: "explain".into(),
                        table: None,
                        ty: LogicalType::Text,
                    }]),
                    rows: vec![vec![Value::text(text)]],
                })
            }
            Statement::Pragma { name, value } => self.run_pragma(name, value.as_ref()),
            Statement::CreateTable { name, columns, if_not_exists } => {
                let registry = self.registry.read();
                let mut cols = Vec::with_capacity(columns.len());
                for (cname, tname) in columns {
                    cols.push((cname.clone(), registry.resolve_type(tname)?));
                }
                self.catalog.create_table(name, cols, *if_not_exists)?;
                Ok(QueryResult::empty())
            }
            Statement::DropTable { name, if_exists } => {
                self.catalog.drop_table(name, *if_exists)?;
                Ok(QueryResult::empty())
            }
            Statement::CreateIndex { name, table, method, column } => {
                self.create_index(name, table, method, column)?;
                Ok(QueryResult::empty())
            }
            Statement::Insert { table, columns, source } => {
                let n = self.insert(table, columns.as_deref(), source, guard)?;
                Ok(QueryResult {
                    schema: Schema::new(vec![mduck_sql::Field {
                        name: "count".into(),
                        table: None,
                        ty: LogicalType::Int,
                    }]),
                    rows: vec![vec![Value::Int(n as i64)]],
                })
            }
            Statement::Update { table, sets, where_clause } => {
                let n = self.update(table, sets, where_clause.as_ref(), guard)?;
                Ok(QueryResult {
                    schema: Schema::new(vec![mduck_sql::Field {
                        name: "count".into(),
                        table: None,
                        ty: LogicalType::Int,
                    }]),
                    rows: vec![vec![Value::Int(n as i64)]],
                })
            }
            Statement::Delete { table, where_clause } => {
                let n = self.delete(table, where_clause.as_ref(), guard)?;
                Ok(QueryResult {
                    schema: Schema::new(vec![mduck_sql::Field {
                        name: "count".into(),
                        table: None,
                        ty: LogicalType::Int,
                    }]),
                    rows: vec![vec![Value::Int(n as i64)]],
                })
            }
        }
    }

    /// `PRAGMA threads [= N]` is an engine setting; everything else is
    /// shared introspection.
    fn run_pragma(&self, name: &str, value: Option<&PragmaValue>) -> SqlResult<QueryResult> {
        if name == "threads" {
            if let Some(v) = value {
                let v = v.as_int().ok_or_else(|| {
                    SqlError::Bind(format!("PRAGMA threads expects an integer, got {v:?}"))
                })?;
                if !(0..=MAX_THREADS as i64).contains(&v) {
                    return Err(SqlError::OutOfRange(format!(
                        "PRAGMA threads expects 0..={MAX_THREADS}, got {v}"
                    )));
                }
                self.set_threads(v as usize);
            }
            let (schema, rows) = mduck_sql::introspect::threads_result(self.effective_threads());
            return Ok(QueryResult { schema, rows });
        }
        if name == "memory_limit" {
            if let Some(v) = value {
                let limit = mduck_sql::introspect::parse_memory_limit(v)?;
                self.limits.write().memory_limit = limit;
            }
            let (schema, rows) =
                mduck_sql::introspect::memory_limit_result(self.limits.read().memory_limit);
            return Ok(QueryResult { schema, rows });
        }
        match mduck_sql::introspect::pragma(name, value)? {
            Some((schema, rows)) => Ok(QueryResult { schema, rows }),
            None => Err(SqlError::Catalog(format!("unknown pragma {name:?}"))),
        }
    }

    /// Execute a SELECT with per-operator profiling enabled and return the
    /// result alongside the analyzed plan rendering and a flattened
    /// per-operator breakdown (the programmatic `EXPLAIN ANALYZE`).
    pub fn execute_analyzed(&self, sql: &str) -> SqlResult<ProfiledQuery> {
        let stmt = parse_timed(sql)?;
        let Statement::Select(sel) = stmt else {
            return Err(SqlError::Bind("execute_analyzed supports SELECT".into()));
        };
        let guard = ExecGuard::new(&self.limits.read());
        let id = mduck_obs::next_query_id();
        let sql_text = sql.trim().to_string();
        let progress = QueryProgress::begin(&sql_text);
        *self.current_progress.lock() = Some(Arc::clone(&progress));
        let start = Instant::now();
        let result = catch_panics(|| self.run_analyzed(&sel, &guard, Some(Arc::clone(&progress))));
        let (rows_returned, error, profile) = match &result {
            Ok(pq) => (pq.result.rows.len() as u64, None, Some(pq.explain.clone())),
            Err(e) => (0, Some(e.to_string()), None),
        };
        self.finish_and_log(id, sql_text, &progress, start, &guard, rows_returned, error, profile);
        result
    }

    /// Shared body of `EXPLAIN ANALYZE` and [`Database::execute_analyzed`]:
    /// plan once, execute the planned tree under profiling, render actuals.
    fn run_analyzed(
        &self,
        sel: &SelectStmt,
        guard: &ExecGuard,
        progress: Option<Arc<QueryProgress>>,
    ) -> SqlResult<ProfiledQuery> {
        let m = mduck_obs::metrics();
        m.queries_executed.inc(1);
        m.active_queries.add(1);
        let _active = GaugeGuard;
        let _query_span = mduck_obs::span("vecdb.query");
        let registry = self.registry.read();
        let bind_start = Instant::now();
        let plan = {
            let _s = mduck_obs::span("vecdb.bind");
            let mut binder = Binder::new(&self.catalog, &registry);
            binder.bind_select(sel)?
        };
        m.vecdb_bind_ns.observe(bind_start.elapsed().as_nanos() as u64);
        let mut ctx = EngineCtx::new(&self.catalog, &registry, guard)
            .with_threads(self.effective_threads())
            .with_progress(progress);
        ctx.enable_profiling();
        let plan_start = Instant::now();
        let (tree, remaining) = {
            let _s = mduck_obs::span("vecdb.plan");
            plan_joins(&ctx, &plan)?
        };
        m.vecdb_plan_ns.observe(plan_start.elapsed().as_nanos() as u64);
        let exec_start = Instant::now();
        let rows = {
            let _s = mduck_obs::span("vecdb.exec");
            execute_select_planned(&ctx, &plan, &tree, &remaining, &OuterStack::EMPTY)?
        };
        let exec_elapsed = exec_start.elapsed();
        m.vecdb_exec_ns.observe(exec_elapsed.as_nanos() as u64);
        let profile = ctx
            .profile
            .as_ref()
            .ok_or_else(|| SqlError::internal("profiling sink disappeared"))?;
        let total_ms = exec_elapsed.as_secs_f64() * 1e3;
        let analyze = AnalyzeData {
            profile,
            plan_key: plan_key(&plan),
            total_ms,
            result_rows: rows.len(),
        };
        let explain = render_plan_analyzed(&plan, &tree, &remaining, &analyze);
        let operators = op_breakdown(&tree, profile);
        let stages = stage_breakdown(plan_key(&plan), profile);
        Ok(ProfiledQuery {
            result: QueryResult { schema: plan.output_schema.clone(), rows },
            explain,
            operators,
            stages,
            total_ms,
            mem_peak: guard.mem().peak(),
        })
    }

    /// `CREATE INDEX ... USING <method>(col)`: the data-first bulk path
    /// (§4.2.2).
    fn create_index(&self, name: &str, table: &str, method: &str, column: &str) -> SqlResult<()> {
        let method = if method.is_empty() { "TRTREE".to_string() } else { method.to_uppercase() };
        let index_type = self
            .index_types
            .read()
            .get(&method)
            .ok_or_else(|| SqlError::Catalog(format!("unknown index type {method:?}")))?;
        let t = self.catalog.get(table)?;
        let mut t = t.write();
        let col = t
            .column_index(column)
            .ok_or_else(|| SqlError::Catalog(format!("no column {column:?} in {table:?}")))?;
        let ty = t.columns[col].ty.clone();
        if !index_type.can_index(&ty) {
            return Err(SqlError::Catalog(format!(
                "index method {method} cannot index type {}",
                ty.name()
            )));
        }
        if t.indexes.iter().any(|i| i.name() == name) {
            return Err(SqlError::Catalog(format!("index {name:?} already exists")));
        }
        let existing = t.column_values(col);
        let index = index_type.create(name, col, &ty, &existing)?;
        t.indexes.push(index);
        Ok(())
    }

    fn insert(
        &self,
        table: &str,
        columns: Option<&[String]>,
        source: &InsertSource,
        guard: &ExecGuard,
    ) -> SqlResult<usize> {
        let registry = self.registry.read();
        // Compute the incoming rows first (they may SELECT from the target).
        let incoming: Vec<Vec<Value>> = match source {
            InsertSource::Values(rows) => {
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    let mut vals = Vec::with_capacity(row.len());
                    for e in row {
                        let bound =
                            mduck_sql::binder::bind_constant_expr(e, &self.catalog, &registry)?;
                        vals.push(eval(
                            &bound,
                            &[],
                            &OuterStack::EMPTY,
                            &mduck_sql::eval::NoSubqueries,
                        )?);
                    }
                    out.push(vals);
                }
                out
            }
            InsertSource::Select(sel) => {
                let mut binder = Binder::new(&self.catalog, &registry);
                let plan = binder.bind_select(sel)?;
                let ctx = EngineCtx::new(&self.catalog, &registry, guard)
                    .with_threads(self.effective_threads());
                execute_select(&ctx, &plan, &OuterStack::EMPTY)?
            }
        };
        guard.check_rows(incoming.len())?;
        let t = self.catalog.get(table)?;
        let mut t = t.write();
        let rows = reorder_for_insert(&t, columns, incoming)?;
        let rows = coerce_rows(&registry, &t.column_types(), rows)?;
        let n = rows.len();
        t.append_rows(&rows)?;
        Ok(n)
    }

    fn update(
        &self,
        table: &str,
        sets: &[(String, mduck_sql::Expr)],
        where_clause: Option<&mduck_sql::Expr>,
        guard: &ExecGuard,
    ) -> SqlResult<usize> {
        let registry = self.registry.read();
        let t_arc = self.catalog.get(table)?;
        // Bind against the table schema.
        let schema_cols = self
            .catalog
            .table_schema(table)
            .ok_or_else(|| SqlError::Catalog(format!("table {table:?} does not exist")))?;
        let schema = Schema::new(
            schema_cols
                .iter()
                .map(|(n, ty)| mduck_sql::Field {
                    name: n.clone(),
                    table: Some(table.to_ascii_lowercase()),
                    ty: ty.clone(),
                })
                .collect(),
        );
        let mut binder = Binder::new(&self.catalog, &registry);
        let bound_sets: SqlResult<Vec<(usize, mduck_sql::BoundExpr)>> = sets
            .iter()
            .map(|(col, e)| {
                let idx = schema
                    .resolve(None, &col.to_ascii_lowercase())
                    .map_err(|_| SqlError::Catalog(format!("no column {col:?}")))?;
                Ok((idx, binder.bind_expr(e, &schema)?))
            })
            .collect();
        let bound_sets = bound_sets?;
        let bound_where = match where_clause {
            Some(w) => Some(binder.bind_expr(w, &schema)?),
            None => None,
        };
        let mut t = t_arc.write();
        let n_rows = t.row_count();
        let mut updated = 0usize;
        let no_sub = mduck_sql::eval::NoSubqueries;
        // Gather replacements per column, then rebuild each affected column
        // once (columns are immutable vectors; cell-wise rebuilds would be
        // quadratic).
        let mut replacements: Vec<Vec<(usize, Value)>> = vec![Vec::new(); bound_sets.len()];
        for i in 0..n_rows {
            guard.check_rows(1)?;
            let row = t.row(i);
            if let Some(w) = &bound_where {
                if !matches!(eval(w, &row, &OuterStack::EMPTY, &no_sub)?, Value::Bool(true)) {
                    continue;
                }
            }
            for (k, (_, e)) in bound_sets.iter().enumerate() {
                let v = eval(e, &row, &OuterStack::EMPTY, &no_sub)?;
                replacements[k].push((i, v));
            }
            updated += 1;
        }
        for (k, (col, _)) in bound_sets.iter().enumerate() {
            rebuild_column(&mut t, *col, &replacements[k])?;
        }
        // Indexes over updated columns are rebuilt wholesale.
        rebuild_indexes_for_columns(
            &mut t,
            &bound_sets.iter().map(|(c, _)| *c).collect::<Vec<_>>(),
            &self.index_types.read(),
        )?;
        Ok(updated)
    }

    fn delete(
        &self,
        table: &str,
        where_clause: Option<&mduck_sql::Expr>,
        guard: &ExecGuard,
    ) -> SqlResult<usize> {
        let registry = self.registry.read();
        let schema_cols = self
            .catalog
            .table_schema(table)
            .ok_or_else(|| SqlError::Catalog(format!("table {table:?} does not exist")))?;
        let schema = Schema::new(
            schema_cols
                .iter()
                .map(|(n, ty)| mduck_sql::Field {
                    name: n.clone(),
                    table: Some(table.to_ascii_lowercase()),
                    ty: ty.clone(),
                })
                .collect(),
        );
        let mut binder = Binder::new(&self.catalog, &registry);
        let bound_where = match where_clause {
            Some(w) => Some(binder.bind_expr(w, &schema)?),
            None => None,
        };
        let t_arc = self.catalog.get(table)?;
        let mut t = t_arc.write();
        let no_sub = mduck_sql::eval::NoSubqueries;
        let mut keep: Vec<usize> = Vec::new();
        let n_rows = t.row_count();
        for i in 0..n_rows {
            guard.check_rows(1)?;
            let row = t.row(i);
            let delete = match &bound_where {
                Some(w) => {
                    matches!(eval(w, &row, &OuterStack::EMPTY, &no_sub)?, Value::Bool(true))
                }
                None => true,
            };
            if !delete {
                keep.push(i);
            }
        }
        let deleted = n_rows - keep.len();
        if deleted > 0 {
            t.columns = t.columns.iter().map(|c| c.gather(&keep)).collect();
            let all_cols: Vec<usize> = (0..t.columns.len()).collect();
            rebuild_indexes_for_columns(&mut t, &all_cols, &self.index_types.read())?;
        }
        Ok(deleted)
    }
}

/// A profiled SELECT: result, analyzed-plan text, per-operator actuals.
#[derive(Debug, Clone)]
pub struct ProfiledQuery {
    pub result: QueryResult,
    /// The `EXPLAIN ANALYZE` rendering.
    pub explain: String,
    /// Flattened (preorder) per-operator actuals of the join/scan tree.
    pub operators: Vec<OpBreakdown>,
    /// Post-join stage actuals (aggregate, projection, order_by, ...) of
    /// the top-level plan.
    pub stages: Vec<StageBreakdown>,
    /// End-to-end execution wall time.
    pub total_ms: f64,
    /// Peak bytes tracked by the statement's memory scope.
    pub mem_peak: u64,
}

/// Decrements the active-query gauge on drop (error paths included).
struct GaugeGuard;

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        mduck_obs::metrics().active_queries.add(-1);
    }
}

/// Parse one statement, feeding the parse-phase latency histogram.
fn parse_timed(sql: &str) -> SqlResult<Statement> {
    let _s = mduck_obs::span("vecdb.parse");
    let start = Instant::now();
    let stmt = parse_statement(sql);
    mduck_obs::metrics().vecdb_parse_ns.observe(start.elapsed().as_nanos() as u64);
    stmt
}

/// The no-panic backstop: a panic escaping the executor is a bug by
/// contract, but it must degrade to an error, not unwind into (and
/// possibly abort) the host process. The interior locks recover from
/// poisoning (see `mduck-sync`), so catching here leaves the database
/// usable. Stack overflows and `abort()` are not unwinds and cannot be
/// caught — the parser's depth limit prevents the former up front.
fn catch_panics<T>(f: impl FnOnce() -> SqlResult<T>) -> SqlResult<T> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            Err(SqlError::internal(format!("executor panicked: {msg}")))
        }
    }
}

/// Coerce incoming rows to the table's column types through registered
/// casts (SQL's implicit assignment casts: VALUES ('2025-01-01') into a
/// TIMESTAMPTZ column, text literals into UDT columns, ...).
fn coerce_rows(
    registry: &Registry,
    types: &[mduck_sql::LogicalType],
    rows: Vec<Vec<Value>>,
) -> SqlResult<Vec<Vec<Value>>> {
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let mut coerced = Vec::with_capacity(row.len());
        for (v, ty) in row.into_iter().zip(types) {
            if v.is_null() || &v.logical_type() == ty || v.logical_type().coercible_to(ty) {
                coerced.push(v);
            } else if let Some(cast) = registry.resolve_cast(&v.logical_type(), ty) {
                coerced.push(cast(&[v])?);
            } else {
                coerced.push(v); // let column storage report the mismatch
            }
        }
        out.push(coerced);
    }
    Ok(out)
}

/// Case-insensitive keyword-prefix stripper for utility statements.
/// Checked slicing: `kw.len()` may fall inside a multi-byte character of
/// arbitrary input, where `&s[..n]` would panic.
fn strip_keyword<'a>(s: &'a str, kw: &str) -> Option<&'a str> {
    let prefix = s.get(..kw.len())?;
    if prefix.eq_ignore_ascii_case(kw) && s.as_bytes().get(kw.len())?.is_ascii_whitespace() {
        s.get(kw.len() + 1..)
    } else {
        None
    }
}

/// Rebuild one column applying the (sorted-by-construction) replacements.
fn rebuild_column(t: &mut Table, col: usize, replacements: &[(usize, Value)]) -> SqlResult<()> {
    if replacements.is_empty() {
        return Ok(());
    }
    let ty = t.columns[col].ty.clone();
    let mut nc = crate::column::ColumnData::new(&ty);
    let mut next = 0usize;
    for i in 0..t.columns[col].len() {
        if next < replacements.len() && replacements[next].0 == i {
            nc.push(&replacements[next].1)?;
            next += 1;
        } else {
            nc.push(&t.columns[col].get(i))?;
        }
    }
    t.columns[col] = nc;
    Ok(())
}

fn rebuild_indexes_for_columns(
    t: &mut Table,
    cols: &[usize],
    index_types: &IndexTypeRegistry,
) -> SqlResult<()> {
    let affected: Vec<usize> = t
        .indexes
        .iter()
        .enumerate()
        .filter(|(_, idx)| cols.contains(&idx.column()))
        .map(|(i, _)| i)
        .collect();
    for i in affected {
        let (name, method, col) = {
            let idx = &t.indexes[i];
            (idx.name().to_string(), idx.method().to_string(), idx.column())
        };
        let ty = t.columns[col].ty.clone();
        let it = index_types
            .get(&method)
            .ok_or_else(|| SqlError::Catalog(format!("index type {method} vanished")))?;
        let values = t.column_values(col);
        t.indexes[i] = it.create(&name, col, &ty, &values)?;
    }
    Ok(())
}

fn reorder_for_insert(
    t: &Table,
    columns: Option<&[String]>,
    incoming: Vec<Vec<Value>>,
) -> SqlResult<Vec<Vec<Value>>> {
    match columns {
        None => Ok(incoming),
        Some(cols) => {
            let mut mapping = Vec::with_capacity(cols.len());
            for c in cols {
                let idx = t
                    .column_index(c)
                    .ok_or_else(|| SqlError::Catalog(format!("no column {c:?}")))?;
                mapping.push(idx);
            }
            let width = t.columns.len();
            let mut out = Vec::with_capacity(incoming.len());
            for row in incoming {
                if row.len() != mapping.len() {
                    return Err(SqlError::execution("INSERT arity mismatch"));
                }
                let mut full = vec![Value::Null; width];
                for (v, &dst) in row.into_iter().zip(&mapping) {
                    full[dst] = v;
                }
                out.push(full);
            }
            Ok(out)
        }
    }
}
