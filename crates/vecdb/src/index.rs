//! The pluggable index framework (§4.1): extensions register an
//! [`IndexType`] (the paper's `RegisterRTreeIndex`) whose instances attach
//! to table columns, accept appended rows (index-first path) or a bulk
//! build (data-first path), and answer optimizer probes for scan injection
//! (§4.3).

use std::collections::HashMap;
use std::sync::Arc;

use mduck_sql::{LogicalType, SqlResult, Value};

/// A live index on one column of one table.
pub trait TableIndex: Send + Sync {
    /// The index name (from `CREATE INDEX <name>`).
    fn name(&self) -> &str;
    /// The index method (`TRTREE`, ...).
    fn method(&self) -> &str;
    /// The indexed column position in the table.
    fn column(&self) -> usize;

    /// Index-first path (§4.2.1): new rows were appended to the table;
    /// `values[i]` is the indexed column value of row id `first_row + i`.
    fn append(&mut self, values: &[Value], first_row: u64) -> SqlResult<()>;

    /// Optimizer probe (§4.3): can this index answer `column <op>
    /// <constant>`? Returns the matching row ids when it can. `None` means
    /// the pattern is not indexable (the optimizer keeps the filter).
    fn try_scan(&self, op: &str, constant: &Value) -> SqlResult<Option<Vec<u64>>>;

    /// Entry count (diagnostics).
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A registered index implementation (the paper's `IndexType` with
/// `create_instance` / `create_plan` callbacks).
pub trait IndexType: Send + Sync {
    /// The `USING <name>` method name, upper-case (e.g. `TRTREE`).
    fn type_name(&self) -> &str;

    /// Can the method index a column of this logical type?
    fn can_index(&self, ty: &LogicalType) -> bool;

    /// Data-first path (§4.2.2): create an index over existing rows. The
    /// implementation is free to parallelize (Sink/Combine/BulkConstruct).
    fn create(
        &self,
        index_name: &str,
        column: usize,
        column_type: &LogicalType,
        existing: &[Value],
    ) -> SqlResult<Box<dyn TableIndex>>;
}

/// Registry of index types, shared by a database instance.
#[derive(Clone, Default)]
pub struct IndexTypeRegistry {
    types: HashMap<String, Arc<dyn IndexType>>,
}

impl IndexTypeRegistry {
    pub fn register(&mut self, t: Arc<dyn IndexType>) {
        self.types.insert(t.type_name().to_ascii_uppercase(), t);
    }

    pub fn get(&self, name: &str) -> Option<Arc<dyn IndexType>> {
        self.types.get(&name.to_ascii_uppercase()).cloned()
    }

    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.types.keys().cloned().collect();
        v.sort();
        v
    }
}
