//! End-to-end tests for the row engine, including cross-engine result
//! equivalence with quackdb on a shared workload.

use mduck_rowdb::RowDatabase;
use quackdb::Database;

const SETUP: &str = "
CREATE TABLE people(id INTEGER, name VARCHAR, age INTEGER, city VARCHAR);
INSERT INTO people VALUES
 (1, 'ann', 34, 'hanoi'), (2, 'bob', 28, 'hue'), (3, 'cat', 41, 'hanoi'),
 (4, 'dan', 28, 'danang'), (5, 'eve', 55, 'hanoi');
";

fn row_db() -> RowDatabase {
    let db = RowDatabase::new();
    db.execute_script(SETUP).unwrap();
    db
}

#[test]
fn basic_select() {
    let db = row_db();
    let r = db
        .execute("SELECT name FROM people WHERE city = 'hanoi' ORDER BY age")
        .unwrap();
    let names: Vec<String> = r.rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(names, vec!["ann", "cat", "eve"]);
}

#[test]
fn btree_index_equality_scan() {
    let db = row_db();
    db.execute("CREATE INDEX idx_city ON people USING BTREE(city)").unwrap();
    let r = db.execute("SELECT count(*) FROM people WHERE city = 'hanoi'").unwrap();
    assert_eq!(r.rows[0][0].to_string(), "3");
    // Index is maintained on insert.
    db.execute("INSERT INTO people VALUES (6, 'fox', 20, 'hanoi')").unwrap();
    let r = db.execute("SELECT count(*) FROM people WHERE city = 'hanoi'").unwrap();
    assert_eq!(r.rows[0][0].to_string(), "4");
    // ... and rebuilt on delete.
    db.execute("DELETE FROM people WHERE name = 'fox'").unwrap();
    let r = db.execute("SELECT count(*) FROM people WHERE city = 'hanoi'").unwrap();
    assert_eq!(r.rows[0][0].to_string(), "3");
}

#[test]
fn default_index_method_is_btree() {
    let db = row_db();
    db.execute("CREATE INDEX idx_id ON people(id)").unwrap();
    let r = db.execute("SELECT name FROM people WHERE id = 3").unwrap();
    assert_eq!(r.rows[0][0].to_string(), "cat");
}

#[test]
fn engines_agree_on_shared_workload() {
    let rdb = row_db();
    let vdb = Database::new();
    vdb.execute_script(SETUP).unwrap();

    for sql in [
        "SELECT count(*) FROM people",
        "SELECT city, count(*) AS n, min(age) FROM people GROUP BY city ORDER BY city",
        "SELECT p1.name, p2.name FROM people p1, people p2 \
         WHERE p1.age = p2.age AND p1.id < p2.id ORDER BY p1.id",
        "SELECT DISTINCT age FROM people ORDER BY age DESC LIMIT 3",
        "WITH h AS (SELECT * FROM people WHERE city = 'hanoi') \
         SELECT name FROM h WHERE age > (SELECT avg(age) FROM h) ORDER BY name",
        "SELECT p1.name FROM people p1 WHERE p1.age <= ALL \
         (SELECT p2.age FROM people p2 WHERE p1.city = p2.city) ORDER BY p1.name",
        "SELECT name FROM people ORDER BY age * -1, name LIMIT 2",
    ] {
        let a = rdb.execute(sql).unwrap_or_else(|e| panic!("rowdb failed {sql}: {e}"));
        let b = vdb.execute(sql).unwrap_or_else(|e| panic!("quackdb failed {sql}: {e}"));
        let ra: Vec<Vec<String>> =
            a.rows.iter().map(|r| r.iter().map(|v| v.to_string()).collect()).collect();
        let rb: Vec<Vec<String>> =
            b.rows.iter().map(|r| r.iter().map(|v| v.to_string()).collect()).collect();
        assert_eq!(ra, rb, "engines disagree on {sql}");
    }
}

#[test]
fn unordered_results_agree() {
    let rdb = row_db();
    let vdb = Database::new();
    vdb.execute_script(SETUP).unwrap();
    for sql in [
        "SELECT name, age FROM people WHERE age > 20",
        "SELECT city, sum(age) FROM people GROUP BY city",
    ] {
        let mut a: Vec<String> = rdb
            .execute(sql)
            .unwrap()
            .rows
            .iter()
            .map(|r| format!("{r:?}"))
            .collect();
        let mut b: Vec<String> = vdb
            .execute(sql)
            .unwrap()
            .rows
            .iter()
            .map(|r| format!("{r:?}"))
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "engines disagree on {sql}");
    }
}

#[test]
fn update_and_generate_series() {
    let db = RowDatabase::new();
    db.execute("CREATE TABLE t(i INTEGER, d DOUBLE)").unwrap();
    db.execute("INSERT INTO t SELECT i, i * 1.5 FROM generate_series(1, 100) AS g(i)")
        .unwrap();
    let r = db.execute("SELECT count(*), sum(d) FROM t").unwrap();
    assert_eq!(r.rows[0][0].to_string(), "100");
    db.execute("UPDATE t SET d = 0.0 WHERE i > 50").unwrap();
    let r = db.execute("SELECT sum(d) FROM t").unwrap();
    assert_eq!(r.rows[0][0].to_string(), "1912.5"); // 1.5 * 1275
}
