//! Index surface of the row engine — the GiST/B-tree analogue of
//! MobilityDB's "with indexes" benchmark scenario.

use std::collections::HashMap;
use std::sync::Arc;

use mduck_sql::{LogicalType, SqlResult, Value};

/// A live index on one column of a heap table.
pub trait RowIndex: Send + Sync {
    fn name(&self) -> &str;
    fn method(&self) -> &str;
    fn column(&self) -> usize;

    /// Incremental maintenance on INSERT.
    fn append(&mut self, values: &[Value], first_row: u64) -> SqlResult<()>;

    /// Probe for `column <op> probe_value`; `None` when the pattern is not
    /// supported by this index.
    fn try_scan(&self, op: &str, probe: &Value) -> SqlResult<Option<Vec<u64>>>;

    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A registered access method (`USING GIST` / `USING BTREE` / ...).
pub trait RowIndexType: Send + Sync {
    fn type_name(&self) -> &str;
    fn can_index(&self, ty: &LogicalType) -> bool;
    fn create(
        &self,
        index_name: &str,
        column: usize,
        column_type: &LogicalType,
        existing: &[Value],
    ) -> SqlResult<Box<dyn RowIndex>>;
}

/// Registry of access methods for a database instance.
#[derive(Clone, Default)]
pub struct RowIndexRegistry {
    types: HashMap<String, Arc<dyn RowIndexType>>,
}

impl RowIndexRegistry {
    pub fn register(&mut self, t: Arc<dyn RowIndexType>) {
        self.types.insert(t.type_name().to_ascii_uppercase(), t);
    }

    pub fn get(&self, name: &str) -> Option<Arc<dyn RowIndexType>> {
        self.types.get(&name.to_ascii_uppercase()).cloned()
    }
}

// ---------------------------------------------------------------- B-tree

/// An equality index over hashable scalar values (PostgreSQL's B-tree, used
/// by the benchmark for the id columns). Implemented as a hash index —
/// the benchmark only issues equality probes.
pub struct BTreeIndex {
    name: String,
    column: usize,
    map: HashMap<Vec<u8>, Vec<u64>>,
    entries: usize,
}

impl BTreeIndex {
    pub fn build(name: &str, column: usize, existing: &[Value]) -> Self {
        let mut idx = BTreeIndex {
            name: name.to_string(),
            column,
            map: HashMap::new(),
            entries: 0,
        };
        idx.append(existing, 0).expect("building from scratch cannot fail");
        idx
    }
}

impl RowIndex for BTreeIndex {
    fn name(&self) -> &str {
        &self.name
    }
    fn method(&self) -> &str {
        "BTREE"
    }
    fn column(&self) -> usize {
        self.column
    }
    fn append(&mut self, values: &[Value], first_row: u64) -> SqlResult<()> {
        for (i, v) in values.iter().enumerate() {
            if v.is_null() {
                continue;
            }
            let mut key = Vec::new();
            v.hash_key(&mut key);
            self.map.entry(key).or_default().push(first_row + i as u64);
            self.entries += 1;
        }
        Ok(())
    }
    fn try_scan(&self, op: &str, probe: &Value) -> SqlResult<Option<Vec<u64>>> {
        if op != "=" || probe.is_null() {
            return Ok(None);
        }
        let mut key = Vec::new();
        probe.hash_key(&mut key);
        Ok(Some(self.map.get(&key).cloned().unwrap_or_default()))
    }
    fn len(&self) -> usize {
        self.entries
    }
}

/// The default B-tree access method.
pub struct BTreeIndexType;

impl RowIndexType for BTreeIndexType {
    fn type_name(&self) -> &str {
        "BTREE"
    }
    fn can_index(&self, ty: &LogicalType) -> bool {
        !matches!(ty, LogicalType::Ext(_) | LogicalType::List)
    }
    fn create(
        &self,
        index_name: &str,
        column: usize,
        _column_type: &LogicalType,
        existing: &[Value],
    ) -> SqlResult<Box<dyn RowIndex>> {
        Ok(Box::new(BTreeIndex::build(index_name, column, existing)))
    }
}
