//! Row-oriented heap tables (the PostgreSQL storage substrate).

use std::collections::HashMap;
use std::sync::Arc;

use mduck_sync::RwLock;

use mduck_sql::{Catalog, LogicalType, SqlError, SqlResult, Value};

use crate::index::RowIndex;

/// A heap table: rows stored row-major, as in a row store.
pub struct HeapTable {
    pub name: String,
    pub column_names: Vec<String>,
    pub column_types: Vec<LogicalType>,
    pub rows: Vec<Vec<Value>>,
    pub indexes: Vec<Box<dyn RowIndex>>,
}

impl HeapTable {
    pub fn new(name: String, columns: Vec<(String, LogicalType)>) -> Self {
        HeapTable {
            name,
            column_names: columns.iter().map(|(n, _)| n.to_ascii_lowercase()).collect(),
            column_types: columns.into_iter().map(|(_, t)| t).collect(),
            rows: Vec::new(),
            indexes: Vec::new(),
        }
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        let lname = name.to_ascii_lowercase();
        self.column_names.iter().position(|n| *n == lname)
    }

    /// Append rows. Atomic: arity is validated before anything mutates,
    /// and the heap itself is only extended after every index accepted
    /// the new entries — so a failure never leaves half-applied rows. An
    /// index that fails mid-append may hold partial entries; it (and any
    /// index fed before it) is dropped rather than left serving stale
    /// row ids, with the error saying so.
    pub fn append_rows(&mut self, rows: Vec<Vec<Value>>) -> SqlResult<()> {
        let first = self.rows.len() as u64;
        for row in &rows {
            if row.len() != self.column_names.len() {
                return Err(SqlError::execution(format!(
                    "INSERT has {} values, table {} has {} columns",
                    row.len(),
                    self.name,
                    self.column_names.len()
                )));
            }
        }
        for k in 0..self.indexes.len() {
            let col = self.indexes[k].column();
            let values: Vec<Value> = rows.iter().map(|r| r[col].clone()).collect();
            if let Err(e) = self.indexes[k].append(&values, first) {
                let dropped: Vec<String> =
                    self.indexes.drain(..=k).map(|i| i.name().to_string()).collect();
                return Err(SqlError::execution(format!(
                    "{e}; index(es) {dropped:?} on table {} were dropped to preserve \
                     consistency and must be re-created",
                    self.name
                )));
            }
        }
        self.rows.extend(rows);
        Ok(())
    }

    /// Keep only the first `len` rows (the rollback path of an atomic
    /// append; the caller rebuilds any indexes).
    pub fn truncate_rows(&mut self, len: usize) {
        self.rows.truncate(len);
    }
}

/// The row-store catalog.
#[derive(Default, Clone)]
pub struct RowCatalog {
    tables: Arc<RwLock<HashMap<String, Arc<RwLock<HeapTable>>>>>,
}

impl RowCatalog {
    pub fn create_table(
        &self,
        name: &str,
        columns: Vec<(String, LogicalType)>,
        if_not_exists: bool,
    ) -> SqlResult<()> {
        let lname = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&lname) {
            if if_not_exists {
                return Ok(());
            }
            return Err(SqlError::Catalog(format!("table {name:?} already exists")));
        }
        tables.insert(lname.clone(), Arc::new(RwLock::new(HeapTable::new(lname, columns))));
        Ok(())
    }

    pub fn drop_table(&self, name: &str, if_exists: bool) -> SqlResult<()> {
        let lname = name.to_ascii_lowercase();
        if self.tables.write().remove(&lname).is_none() && !if_exists {
            return Err(SqlError::Catalog(format!("table {name:?} does not exist")));
        }
        Ok(())
    }

    pub fn get(&self, name: &str) -> SqlResult<Arc<RwLock<HeapTable>>> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| SqlError::Catalog(format!("table {name:?} does not exist")))
    }

    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.read().keys().cloned().collect();
        v.sort();
        v
    }
}

impl Catalog for RowCatalog {
    fn table_schema(&self, name: &str) -> Option<Vec<(String, LogicalType)>> {
        let t = self.tables.read().get(&name.to_ascii_lowercase())?.clone();
        let t = t.read();
        Some(t.column_names.iter().cloned().zip(t.column_types.iter().cloned()).collect())
    }
}
