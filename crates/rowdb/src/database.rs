//! The row-store database instance (the PostgreSQL/MobilityDB analogue).

use std::sync::Arc;
use std::time::Instant;

use mduck_obs::QueryProgress;
use mduck_sync::{Mutex, RwLock};

use mduck_sql::ast::{InsertSource, Statement};
use mduck_sql::eval::{eval, OuterStack};
use mduck_sql::{
    parse_statement, Binder, Catalog, ExecGuard, ExecLimits, LogicalType, Registry, Schema,
    SqlError, SqlResult, Value,
};

use crate::catalog::RowCatalog;
use crate::exec::{execute_select, RowCtx};
use crate::index::{BTreeIndexType, RowIndexRegistry};

/// A query result (same shape as quackdb's for easy comparison testing).
#[derive(Debug, Clone)]
pub struct RowQueryResult {
    pub schema: Schema,
    pub rows: Vec<Vec<Value>>,
}

/// An in-process row-store database.
pub struct RowDatabase {
    pub catalog: RowCatalog,
    registry: Arc<RwLock<Registry>>,
    index_types: Arc<RwLock<RowIndexRegistry>>,
    /// Per-statement execution limits (`PRAGMA memory_limit`, row budget).
    limits: RwLock<ExecLimits>,
    /// Progress handle of the most recent `execute()` statement; retained
    /// after completion so late pollers read 1.0 rather than nothing.
    current_progress: Mutex<Option<Arc<QueryProgress>>>,
}

impl Default for RowDatabase {
    fn default() -> Self {
        Self::new()
    }
}

impl RowDatabase {
    pub fn new() -> Self {
        let mut index_types = RowIndexRegistry::default();
        index_types.register(Arc::new(BTreeIndexType));
        RowDatabase {
            catalog: RowCatalog::default(),
            registry: Arc::new(RwLock::new(Registry::with_builtins())),
            index_types: Arc::new(RwLock::new(index_types)),
            limits: RwLock::new(ExecLimits::default()),
            current_progress: Mutex::new(None),
        }
    }

    pub fn set_exec_limits(&self, limits: ExecLimits) {
        *self.limits.write() = limits;
    }

    pub fn exec_limits(&self) -> ExecLimits {
        self.limits.read().clone()
    }

    /// Completion fraction of the most recent `execute()` statement, if
    /// any — pollable from another thread while a statement runs.
    pub fn progress(&self) -> Option<f64> {
        self.current_progress.lock().as_ref().map(|p| p.fraction())
    }

    pub fn registry_mut(&self) -> mduck_sync::RwLockWriteGuard<'_, Registry> {
        self.registry.write()
    }

    pub fn registry(&self) -> mduck_sync::RwLockReadGuard<'_, Registry> {
        self.registry.read()
    }

    pub fn index_types_mut(&self) -> mduck_sync::RwLockWriteGuard<'_, RowIndexRegistry> {
        self.index_types.write()
    }

    pub fn execute(&self, sql: &str) -> SqlResult<RowQueryResult> {
        let stmt = parse_timed(sql)?;
        let guard = ExecGuard::new(&self.limits.read());
        let id = mduck_obs::next_query_id();
        let sql_text = sql.trim().to_string();
        let progress = QueryProgress::begin(&sql_text);
        *self.current_progress.lock() = Some(Arc::clone(&progress));
        let start = Instant::now();
        let result = self.run_guarded(&stmt, &guard, Some(&progress));
        progress.finish();
        let duration = start.elapsed();
        let (rows_returned, error) = match &result {
            Ok(r) => (r.rows.len() as u64, None),
            Err(e) => (0, Some(e.to_string())),
        };
        // Slow SELECTs capture the engine's analyzed plan; the re-plan is
        // bind-only and cheap next to a slow execution.
        let slow = duration.as_millis() as u64 >= mduck_obs::slow_threshold_ms();
        let profile = if slow { self.explain_for_log(&stmt) } else { None };
        mduck_obs::log_query(mduck_obs::QueryLogRecord {
            id,
            engine: "rowdb",
            sql: sql_text,
            duration_us: duration.as_micros() as u64,
            rows_returned,
            rows_scanned: guard.rows_scanned(),
            guard_trip: guard.trip_label(),
            mem_peak: guard.mem().peak(),
            threads: 1,
            error,
            profile,
        });
        result
    }

    /// The analyzed-plan text attached to slow query-log entries.
    fn explain_for_log(&self, stmt: &Statement) -> Option<String> {
        let Statement::Select(sel) = stmt else { return None };
        let registry = self.registry.read();
        let mut binder = Binder::new(&self.catalog, &registry);
        let plan = binder.bind_select(sel).ok()?;
        let guard = ExecGuard::new(&self.limits.read());
        let ctx = RowCtx::new(&self.catalog, &registry, &guard);
        crate::exec::explain_select(&ctx, &plan).ok()
    }

    pub fn execute_script(&self, sql: &str) -> SqlResult<RowQueryResult> {
        let stmts = mduck_sql::parse_script(sql)?;
        let mut last = RowQueryResult { schema: Schema::default(), rows: Vec::new() };
        for s in &stmts {
            last = self.execute_statement(s)?;
        }
        Ok(last)
    }

    /// Execute a parsed statement. Like quackdb, this is the engine's
    /// no-panic boundary: a panic escaping the Volcano executor is caught
    /// and surfaced as [`SqlError::Internal`] instead of unwinding into
    /// the host (the interior locks recover from poisoning).
    pub fn execute_statement(&self, stmt: &Statement) -> SqlResult<RowQueryResult> {
        let guard = ExecGuard::new(&self.limits.read());
        self.run_guarded(stmt, &guard, None)
    }

    fn run_guarded(
        &self,
        stmt: &Statement,
        guard: &ExecGuard,
        progress: Option<&QueryProgress>,
    ) -> SqlResult<RowQueryResult> {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.run_statement(stmt, guard, progress)
        })) {
            Ok(r) => r,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                Err(SqlError::internal(format!("executor panicked: {msg}")))
            }
        }
    }

    fn run_statement(
        &self,
        stmt: &Statement,
        guard: &ExecGuard,
        progress: Option<&QueryProgress>,
    ) -> SqlResult<RowQueryResult> {
        match stmt {
            Statement::Select(sel) => {
                let m = mduck_obs::metrics();
                m.queries_executed.inc(1);
                m.active_queries.add(1);
                let _active = GaugeGuard;
                let _query_span = mduck_obs::span("rowdb.query");
                let registry = self.registry.read();
                let bind_start = Instant::now();
                let plan = {
                    let _s = mduck_obs::span("rowdb.bind");
                    let mut binder = Binder::new(&self.catalog, &registry);
                    binder.bind_select(sel)?
                };
                m.rowdb_bind_ns.observe(bind_start.elapsed().as_nanos() as u64);
                let ctx = RowCtx::new(&self.catalog, &registry, guard).with_progress(progress);
                let exec_start = Instant::now();
                let rows = {
                    let _s = mduck_obs::span("rowdb.exec");
                    execute_select(&ctx, &plan, &OuterStack::EMPTY)?
                };
                m.rowdb_exec_ns.observe(exec_start.elapsed().as_nanos() as u64);
                Ok(RowQueryResult { schema: plan.output_schema, rows })
            }
            Statement::Explain { statement, analyze } => {
                // PostgreSQL-style indented text plan.
                let Statement::Select(sel) = statement.as_ref() else {
                    return Err(SqlError::Bind("EXPLAIN supports SELECT".into()));
                };
                let registry = self.registry.read();
                let mut binder = Binder::new(&self.catalog, &registry);
                let plan = binder.bind_select(sel)?;
                let ctx = RowCtx::new(&self.catalog, &registry, guard).with_progress(progress);
                let mut text = crate::exec::explain_select(&ctx, &plan)?;
                if *analyze {
                    // PostgreSQL appends execution totals below the plan.
                    let m = mduck_obs::metrics();
                    m.queries_executed.inc(1);
                    let exec_start = Instant::now();
                    let rows = {
                        let _s = mduck_obs::span("rowdb.exec");
                        execute_select(&ctx, &plan, &OuterStack::EMPTY)?
                    };
                    let elapsed = exec_start.elapsed();
                    m.rowdb_exec_ns.observe(elapsed.as_nanos() as u64);
                    text.push_str(&format!(
                        "Execution Time: {:.3} ms\n",
                        elapsed.as_secs_f64() * 1e3
                    ));
                    text.push_str(&format!("Rows Returned: {}\n", rows.len()));
                    text.push_str(&format!(
                        "Rows Scanned: {}\n",
                        *ctx.rows_scanned.borrow()
                    ));
                }
                Ok(RowQueryResult {
                    schema: Schema::new(vec![mduck_sql::Field {
                        name: "explain".into(),
                        table: None,
                        ty: LogicalType::Text,
                    }]),
                    rows: vec![vec![Value::text(text)]],
                })
            }
            Statement::Pragma { name, value } => {
                // The row engine is single-threaded by design (it stands in
                // for tuple-at-a-time PostgreSQL): `PRAGMA threads` is
                // accepted for cross-engine script compatibility but always
                // reports 1.
                if name == "threads" {
                    if let Some(v) = value {
                        let v = v.as_int().ok_or_else(|| {
                            SqlError::Bind(format!(
                                "PRAGMA threads expects an integer, got {v:?}"
                            ))
                        })?;
                        if v < 0 {
                            return Err(SqlError::OutOfRange(format!(
                                "PRAGMA threads expects a non-negative value, got {v}"
                            )));
                        }
                    }
                    let (schema, rows) = mduck_sql::introspect::threads_result(1);
                    return Ok(RowQueryResult { schema, rows });
                }
                if name == "memory_limit" {
                    if let Some(v) = value {
                        let limit = mduck_sql::introspect::parse_memory_limit(v)?;
                        self.limits.write().memory_limit = limit;
                    }
                    let (schema, rows) = mduck_sql::introspect::memory_limit_result(
                        self.limits.read().memory_limit,
                    );
                    return Ok(RowQueryResult { schema, rows });
                }
                match mduck_sql::introspect::pragma(name, value.as_ref())? {
                    Some((schema, rows)) => Ok(RowQueryResult { schema, rows }),
                    None => Err(SqlError::Catalog(format!("unknown pragma {name:?}"))),
                }
            }
            Statement::CreateTable { name, columns, if_not_exists } => {
                let registry = self.registry.read();
                let mut cols = Vec::with_capacity(columns.len());
                for (cname, tname) in columns {
                    cols.push((cname.clone(), registry.resolve_type(tname)?));
                }
                self.catalog.create_table(name, cols, *if_not_exists)?;
                Ok(RowQueryResult { schema: Schema::default(), rows: Vec::new() })
            }
            Statement::DropTable { name, if_exists } => {
                self.catalog.drop_table(name, *if_exists)?;
                Ok(RowQueryResult { schema: Schema::default(), rows: Vec::new() })
            }
            Statement::CreateIndex { name, table, method, column } => {
                self.create_index(name, table, method, column)?;
                Ok(RowQueryResult { schema: Schema::default(), rows: Vec::new() })
            }
            Statement::Insert { table, columns, source } => {
                let n = self.insert(table, columns.as_deref(), source)?;
                Ok(RowQueryResult {
                    schema: Schema::default(),
                    rows: vec![vec![Value::Int(n as i64)]],
                })
            }
            Statement::Update { table, sets, where_clause } => {
                let n = self.update(table, sets, where_clause.as_ref())?;
                Ok(RowQueryResult {
                    schema: Schema::default(),
                    rows: vec![vec![Value::Int(n as i64)]],
                })
            }
            Statement::Delete { table, where_clause } => {
                let n = self.delete(table, where_clause.as_ref())?;
                Ok(RowQueryResult {
                    schema: Schema::default(),
                    rows: vec![vec![Value::Int(n as i64)]],
                })
            }
        }
    }

    fn create_index(&self, name: &str, table: &str, method: &str, column: &str) -> SqlResult<()> {
        let method = if method.is_empty() { "BTREE".to_string() } else { method.to_uppercase() };
        let index_type = self
            .index_types
            .read()
            .get(&method)
            .ok_or_else(|| SqlError::Catalog(format!("unknown index method {method:?}")))?;
        let t = self.catalog.get(table)?;
        let mut t = t.write();
        let col = t
            .column_index(column)
            .ok_or_else(|| SqlError::Catalog(format!("no column {column:?} in {table:?}")))?;
        let ty = t.column_types[col].clone();
        if !index_type.can_index(&ty) {
            return Err(SqlError::Catalog(format!(
                "index method {method} cannot index type {}",
                ty.name()
            )));
        }
        if t.indexes.iter().any(|i| i.name() == name) {
            return Err(SqlError::Catalog(format!("index {name:?} already exists")));
        }
        let existing: Vec<Value> = t.rows.iter().map(|r| r[col].clone()).collect();
        let index = index_type.create(name, col, &ty, &existing)?;
        t.indexes.push(index);
        Ok(())
    }

    fn insert(
        &self,
        table: &str,
        columns: Option<&[String]>,
        source: &InsertSource,
    ) -> SqlResult<usize> {
        let registry = self.registry.read();
        let incoming: Vec<Vec<Value>> = match source {
            InsertSource::Values(rows) => {
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    let mut vals = Vec::with_capacity(row.len());
                    for e in row {
                        let bound =
                            mduck_sql::binder::bind_constant_expr(e, &self.catalog, &registry)?;
                        vals.push(eval(
                            &bound,
                            &[],
                            &OuterStack::EMPTY,
                            &mduck_sql::eval::NoSubqueries,
                        )?);
                    }
                    out.push(vals);
                }
                out
            }
            InsertSource::Select(sel) => {
                let mut binder = Binder::new(&self.catalog, &registry);
                let plan = binder.bind_select(sel)?;
                let guard = ExecGuard::new(&self.limits.read());
                let ctx = RowCtx::new(&self.catalog, &registry, &guard);
                execute_select(&ctx, &plan, &OuterStack::EMPTY)?
            }
        };
        let t = self.catalog.get(table)?;
        let mut t = t.write();
        let rows = match columns {
            None => incoming,
            Some(cols) => {
                let mut mapping = Vec::with_capacity(cols.len());
                for c in cols {
                    mapping.push(
                        t.column_index(c)
                            .ok_or_else(|| SqlError::Catalog(format!("no column {c:?}")))?,
                    );
                }
                let width = t.column_names.len();
                incoming
                    .into_iter()
                    .map(|row| {
                        let mut full = vec![Value::Null; width];
                        for (v, &dst) in row.into_iter().zip(&mapping) {
                            full[dst] = v;
                        }
                        full
                    })
                    .collect()
            }
        };
        // Implicit assignment casts to the column types.
        let types = t.column_types.clone();
        let mut coerced = Vec::with_capacity(rows.len());
        for row in rows {
            let mut cr = Vec::with_capacity(row.len());
            for (v, ty) in row.into_iter().zip(&types) {
                if v.is_null() || &v.logical_type() == ty || v.logical_type().coercible_to(ty) {
                    cr.push(v);
                } else if let Some(cast) = registry.resolve_cast(&v.logical_type(), ty) {
                    cr.push(cast(&[v])?);
                } else {
                    cr.push(v);
                }
            }
            coerced.push(cr);
        }
        let n = coerced.len();
        t.append_rows(coerced)?;
        Ok(n)
    }

    fn bind_table_schema(&self, table: &str) -> SqlResult<Schema> {
        let cols = self
            .catalog
            .table_schema(table)
            .ok_or_else(|| SqlError::Catalog(format!("table {table:?} does not exist")))?;
        Ok(Schema::new(
            cols.into_iter()
                .map(|(n, ty)| mduck_sql::Field {
                    name: n,
                    table: Some(table.to_ascii_lowercase()),
                    ty,
                })
                .collect(),
        ))
    }

    fn update(
        &self,
        table: &str,
        sets: &[(String, mduck_sql::Expr)],
        where_clause: Option<&mduck_sql::Expr>,
    ) -> SqlResult<usize> {
        let registry = self.registry.read();
        let schema = self.bind_table_schema(table)?;
        let mut binder = Binder::new(&self.catalog, &registry);
        let bound_sets: SqlResult<Vec<(usize, mduck_sql::BoundExpr)>> = sets
            .iter()
            .map(|(col, e)| {
                let idx = schema
                    .resolve(None, &col.to_ascii_lowercase())
                    .map_err(|_| SqlError::Catalog(format!("no column {col:?}")))?;
                Ok((idx, binder.bind_expr(e, &schema)?))
            })
            .collect();
        let bound_sets = bound_sets?;
        let bound_where = match where_clause {
            Some(w) => Some(binder.bind_expr(w, &schema)?),
            None => None,
        };
        let t = self.catalog.get(table)?;
        let mut t = t.write();
        let no_sub = mduck_sql::eval::NoSubqueries;
        let mut updated = 0;
        for i in 0..t.rows.len() {
            let row = t.rows[i].clone();
            if let Some(w) = &bound_where {
                if !matches!(eval(w, &row, &OuterStack::EMPTY, &no_sub)?, Value::Bool(true)) {
                    continue;
                }
            }
            for (col, e) in &bound_sets {
                t.rows[i][*col] = eval(e, &row, &OuterStack::EMPTY, &no_sub)?;
            }
            updated += 1;
        }
        // Rebuild indexes over updated columns.
        self.rebuild_indexes(&mut t, &bound_sets.iter().map(|(c, _)| *c).collect::<Vec<_>>())?;
        Ok(updated)
    }

    fn delete(&self, table: &str, where_clause: Option<&mduck_sql::Expr>) -> SqlResult<usize> {
        let registry = self.registry.read();
        let schema = self.bind_table_schema(table)?;
        let mut binder = Binder::new(&self.catalog, &registry);
        let bound_where = match where_clause {
            Some(w) => Some(binder.bind_expr(w, &schema)?),
            None => None,
        };
        let t = self.catalog.get(table)?;
        let mut t = t.write();
        let no_sub = mduck_sql::eval::NoSubqueries;
        let before = t.rows.len();
        let mut kept = Vec::with_capacity(before);
        for row in std::mem::take(&mut t.rows) {
            let delete = match &bound_where {
                Some(w) => {
                    matches!(eval(w, &row, &OuterStack::EMPTY, &no_sub)?, Value::Bool(true))
                }
                None => true,
            };
            if !delete {
                kept.push(row);
            }
        }
        t.rows = kept;
        let all: Vec<usize> = (0..t.column_names.len()).collect();
        self.rebuild_indexes(&mut t, &all)?;
        Ok(before - t.rows.len())
    }

    /// Execute a SELECT and return the result together with the analyzed
    /// plan footer totals (execution time, rows returned/scanned).
    pub fn execute_analyzed(&self, sql: &str) -> SqlResult<(RowQueryResult, f64)> {
        let start = Instant::now();
        let result = self.execute(sql)?;
        Ok((result, start.elapsed().as_secs_f64() * 1e3))
    }

    fn rebuild_indexes(
        &self,
        t: &mut crate::catalog::HeapTable,
        cols: &[usize],
    ) -> SqlResult<()> {
        let index_types = self.index_types.read();
        let affected: Vec<usize> = t
            .indexes
            .iter()
            .enumerate()
            .filter(|(_, idx)| cols.contains(&idx.column()))
            .map(|(i, _)| i)
            .collect();
        for i in affected {
            let (name, method, col) = {
                let idx = &t.indexes[i];
                (idx.name().to_string(), idx.method().to_string(), idx.column())
            };
            let ty = t.column_types[col].clone();
            let it = index_types
                .get(&method)
                .ok_or_else(|| SqlError::Catalog(format!("index method {method} vanished")))?;
            let values: Vec<Value> = t.rows.iter().map(|r| r[col].clone()).collect();
            t.indexes[i] = it.create(&name, col, &ty, &values)?;
        }
        Ok(())
    }
}

/// Decrements the active-query gauge on drop (error paths included).
struct GaugeGuard;

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        mduck_obs::metrics().active_queries.add(-1);
    }
}

/// Parse one statement, feeding the parse-phase latency histogram.
fn parse_timed(sql: &str) -> SqlResult<Statement> {
    let _s = mduck_obs::span("rowdb.parse");
    let start = Instant::now();
    let stmt = parse_statement(sql);
    mduck_obs::metrics().rowdb_parse_ns.observe(start.elapsed().as_nanos() as u64);
    stmt
}
