//! The row-store database instance (the PostgreSQL/MobilityDB analogue).

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use mduck_obs::QueryProgress;
use mduck_sync::{Mutex, RwLock};
use mduck_wal::{DurabilityManager, IndexDef, Recovery, Snapshot, TableSnapshot, WalRecord};

use mduck_sql::ast::{InsertSource, Statement};
use mduck_sql::eval::{eval, OuterStack};
use mduck_sql::{
    parse_statement, Binder, Catalog, ExecGuard, ExecLimits, LogicalType, PragmaValue, Registry,
    Schema, SqlError, SqlResult, Value,
};

use crate::catalog::RowCatalog;
use crate::exec::{execute_select, RowCtx};
use crate::index::{BTreeIndexType, RowIndexRegistry};

/// A query result (same shape as quackdb's for easy comparison testing).
#[derive(Debug, Clone)]
pub struct RowQueryResult {
    pub schema: Schema,
    pub rows: Vec<Vec<Value>>,
}

/// An in-process row-store database.
pub struct RowDatabase {
    pub catalog: RowCatalog,
    registry: Arc<RwLock<Registry>>,
    index_types: Arc<RwLock<RowIndexRegistry>>,
    /// Per-statement execution limits (`PRAGMA memory_limit`, row budget).
    limits: RwLock<ExecLimits>,
    /// Progress handle of the most recent `execute()` statement; retained
    /// after completion so late pollers read 1.0 rather than nothing.
    current_progress: Mutex<Option<Arc<QueryProgress>>>,
    /// Durability manager when a WAL is attached ([`RowDatabase::open`] /
    /// `PRAGMA wal='path'`); `None` keeps the in-memory default.
    wal: RwLock<Option<Arc<DurabilityManager>>>,
    /// Serializes catalog/data commits and checkpoints (see quackdb's
    /// twin field for the full rationale).
    commit_lock: Mutex<()>,
}

impl Default for RowDatabase {
    fn default() -> Self {
        Self::new()
    }
}

impl RowDatabase {
    pub fn new() -> Self {
        let mut index_types = RowIndexRegistry::default();
        index_types.register(Arc::new(BTreeIndexType));
        RowDatabase {
            catalog: RowCatalog::default(),
            registry: Arc::new(RwLock::new(Registry::with_builtins())),
            index_types: Arc::new(RwLock::new(index_types)),
            limits: RwLock::new(ExecLimits::default()),
            current_progress: Mutex::new(None),
            wal: RwLock::new(None),
            commit_lock: Mutex::new(()),
        }
    }

    /// A durable instance: open (or create) the WAL at `path`, recover
    /// committed state, and log every later DDL/DML statement. For
    /// extension types, load the extension first and use
    /// [`RowDatabase::attach_wal`].
    pub fn open(path: impl AsRef<Path>) -> SqlResult<Self> {
        let db = Self::new();
        db.attach_wal(path)?;
        Ok(db)
    }

    /// Attach a WAL to a live database (`PRAGMA wal='path'`), recovering
    /// on-disk state first. A brand-new WAL on a database that already
    /// holds tables checkpoints them immediately.
    pub fn attach_wal(&self, path: impl AsRef<Path>) -> SqlResult<()> {
        let _commit = self.commit_lock.lock();
        if self.wal.read().is_some() {
            return Err(SqlError::execution(
                "a WAL is already attached; detach it first (PRAGMA wal='off')",
            ));
        }
        let (manager, recovery) = {
            let registry = self.registry.read();
            DurabilityManager::open(path.as_ref(), &registry)?
        };
        self.apply_recovery(&recovery)?;
        let manager = Arc::new(manager);
        let fresh = recovery.snapshot.is_none() && recovery.records.is_empty();
        if fresh && !self.catalog.table_names().is_empty() {
            self.checkpoint_locked(&manager)?;
        }
        *self.wal.write() = Some(manager);
        Ok(())
    }

    /// Detach the WAL (`PRAGMA wal='off'`); on-disk state stays put.
    pub fn detach_wal(&self) {
        let _commit = self.commit_lock.lock();
        *self.wal.write() = None;
    }

    /// The attached durability manager, if any.
    pub fn wal(&self) -> Option<Arc<DurabilityManager>> {
        self.wal.read().clone()
    }

    /// Bulk-insert pre-typed rows through the full commit path: atomic
    /// append, WAL record, auto-checkpoint — identical durability to an
    /// `INSERT` statement, without parse/bind overhead (see quackdb's
    /// twin method; used by the berlinmod loader).
    pub fn insert_rows(&self, table: &str, rows: Vec<Vec<Value>>) -> SqlResult<usize> {
        let n = rows.len();
        let needed = {
            let _commit = self.commit_lock.lock();
            let t = self.catalog.get(table)?;
            let mut t = t.write();
            let pre_rows = t.rows.len();
            let record = self.wal.read().is_some().then(|| WalRecord::Insert {
                table: t.name.clone(),
                rows: rows.clone(),
            });
            t.append_rows(rows)?;
            match record {
                None => false,
                Some(record) => match self.wal_append(&record) {
                    Ok(needed) => needed,
                    Err(e) => {
                        t.truncate_rows(pre_rows);
                        let all: Vec<usize> = (0..t.column_names.len()).collect();
                        self.rebuild_indexes(&mut t, &all)?;
                        return Err(e);
                    }
                },
            }
        };
        self.maybe_auto_checkpoint(needed);
        Ok(n)
    }

    /// Snapshot the whole database and truncate the WAL (the
    /// `CHECKPOINT` statement). `false` = no WAL attached, nothing done.
    pub fn checkpoint(&self) -> SqlResult<bool> {
        let Some(manager) = self.wal() else { return Ok(false) };
        let _commit = self.commit_lock.lock();
        self.checkpoint_locked(&manager)?;
        Ok(true)
    }

    fn checkpoint_locked(&self, manager: &DurabilityManager) -> SqlResult<()> {
        let snapshot = self.snapshot_state();
        manager.checkpoint(&snapshot)
    }

    fn snapshot_state(&self) -> Snapshot {
        let mut tables = Vec::new();
        for name in self.catalog.table_names() {
            let Ok(t) = self.catalog.get(&name) else { continue };
            let t = t.read();
            let columns: Vec<(String, LogicalType)> = t
                .column_names
                .iter()
                .cloned()
                .zip(t.column_types.iter().cloned())
                .collect();
            let indexes: Vec<IndexDef> = t
                .indexes
                .iter()
                .map(|i| IndexDef {
                    name: i.name().to_string(),
                    method: i.method().to_string(),
                    column: t.column_names[i.column()].clone(),
                })
                .collect();
            tables.push(TableSnapshot {
                name: t.name.clone(),
                columns,
                indexes,
                rows: t.rows.clone(),
            });
        }
        Snapshot { tables }
    }

    fn apply_recovery(&self, recovery: &Recovery) -> SqlResult<()> {
        if let Some(snapshot) = &recovery.snapshot {
            for ts in &snapshot.tables {
                self.catalog.create_table(&ts.name, ts.columns.clone(), false)?;
                let t = self.catalog.get(&ts.name)?;
                let res = t.write().append_rows(ts.rows.clone());
                res?;
            }
            for ts in &snapshot.tables {
                for idx in &ts.indexes {
                    self.create_index(&idx.name, &ts.name, &idx.method, &idx.column)?;
                }
            }
        }
        for record in &recovery.records {
            self.apply_record(record)?;
        }
        Ok(())
    }

    /// Replay one WAL record through the same storage paths live
    /// statements use.
    fn apply_record(&self, record: &WalRecord) -> SqlResult<()> {
        match record {
            WalRecord::CreateTable { name, columns } => {
                self.catalog.create_table(name, columns.clone(), false)
            }
            WalRecord::DropTable { name } => self.catalog.drop_table(name, false),
            WalRecord::CreateIndex { name, table, method, column } => {
                self.create_index(name, table, method, column)
            }
            WalRecord::Insert { table, rows } => {
                let t = self.catalog.get(table)?;
                let res = t.write().append_rows(rows.clone());
                res
            }
            WalRecord::Update { table, cells } => {
                let t = self.catalog.get(table)?;
                let mut t = t.write();
                for (row, col, v) in cells {
                    let (r, c) = (*row as usize, *col as usize);
                    if r >= t.rows.len() || c >= t.column_names.len() {
                        return Err(SqlError::corruption(format!(
                            "wal update cell ({r}, {c}) outside table {} ({} rows)",
                            t.name,
                            t.rows.len()
                        )));
                    }
                    t.rows[r][c] = v.clone();
                }
                let cols: Vec<usize> = {
                    let mut s: Vec<usize> =
                        cells.iter().map(|(_, c, _)| *c as usize).collect();
                    s.sort_unstable();
                    s.dedup();
                    s
                };
                self.rebuild_indexes(&mut t, &cols)
            }
            WalRecord::Delete { table, rows } => {
                let t = self.catalog.get(table)?;
                let mut t = t.write();
                let dead: std::collections::HashSet<u64> = rows.iter().copied().collect();
                let mut kept = Vec::with_capacity(t.rows.len());
                for (i, row) in std::mem::take(&mut t.rows).into_iter().enumerate() {
                    if !dead.contains(&(i as u64)) {
                        kept.push(row);
                    }
                }
                t.rows = kept;
                let all: Vec<usize> = (0..t.column_names.len()).collect();
                self.rebuild_indexes(&mut t, &all)
            }
        }
    }

    /// Append one record to the attached WAL, if any; returns whether
    /// the auto-checkpoint threshold was crossed.
    fn wal_append(&self, record: &WalRecord) -> SqlResult<bool> {
        match &*self.wal.read() {
            Some(manager) => manager.append(record),
            None => Ok(false),
        }
    }

    /// Size-triggered checkpoint after a committed statement. Failures
    /// must not fail that statement (already applied and logged); the
    /// log keeps growing and the next trigger retries.
    fn maybe_auto_checkpoint(&self, needed: bool) {
        if !needed {
            return;
        }
        let Some(manager) = self.wal() else { return };
        let _commit = self.commit_lock.lock();
        if self.checkpoint_locked(&manager).is_ok() {
            mduck_obs::metrics().wal_auto_checkpoints.inc(1);
        }
    }

    pub fn set_exec_limits(&self, limits: ExecLimits) {
        *self.limits.write() = limits;
    }

    pub fn exec_limits(&self) -> ExecLimits {
        self.limits.read().clone()
    }

    /// Completion fraction of the most recent `execute()` statement, if
    /// any — pollable from another thread while a statement runs.
    pub fn progress(&self) -> Option<f64> {
        self.current_progress.lock().as_ref().map(|p| p.fraction())
    }

    pub fn registry_mut(&self) -> mduck_sync::RwLockWriteGuard<'_, Registry> {
        self.registry.write()
    }

    pub fn registry(&self) -> mduck_sync::RwLockReadGuard<'_, Registry> {
        self.registry.read()
    }

    pub fn index_types_mut(&self) -> mduck_sync::RwLockWriteGuard<'_, RowIndexRegistry> {
        self.index_types.write()
    }

    pub fn execute(&self, sql: &str) -> SqlResult<RowQueryResult> {
        let stmt = parse_timed(sql)?;
        let guard = ExecGuard::new(&self.limits.read());
        let id = mduck_obs::next_query_id();
        let sql_text = sql.trim().to_string();
        let progress = QueryProgress::begin(&sql_text);
        *self.current_progress.lock() = Some(Arc::clone(&progress));
        let start = Instant::now();
        let result = self.run_guarded(&stmt, &guard, Some(&progress));
        progress.finish();
        let duration = start.elapsed();
        let (rows_returned, error) = match &result {
            Ok(r) => (r.rows.len() as u64, None),
            Err(e) => (0, Some(e.to_string())),
        };
        // Slow SELECTs capture the engine's analyzed plan; the re-plan is
        // bind-only and cheap next to a slow execution.
        let slow = duration.as_millis() as u64 >= mduck_obs::slow_threshold_ms();
        let profile = if slow { self.explain_for_log(&stmt) } else { None };
        mduck_obs::log_query(mduck_obs::QueryLogRecord {
            id,
            engine: "rowdb",
            sql: sql_text,
            duration_us: duration.as_micros() as u64,
            rows_returned,
            rows_scanned: guard.rows_scanned(),
            guard_trip: guard.trip_label(),
            mem_peak: guard.mem().peak(),
            threads: 1,
            error,
            profile,
        });
        result
    }

    /// The analyzed-plan text attached to slow query-log entries.
    fn explain_for_log(&self, stmt: &Statement) -> Option<String> {
        let Statement::Select(sel) = stmt else { return None };
        let registry = self.registry.read();
        let mut binder = Binder::new(&self.catalog, &registry);
        let plan = binder.bind_select(sel).ok()?;
        let guard = ExecGuard::new(&self.limits.read());
        let ctx = RowCtx::new(&self.catalog, &registry, &guard);
        crate::exec::explain_select(&ctx, &plan).ok()
    }

    pub fn execute_script(&self, sql: &str) -> SqlResult<RowQueryResult> {
        let stmts = mduck_sql::parse_script(sql)?;
        let mut last = RowQueryResult { schema: Schema::default(), rows: Vec::new() };
        for s in &stmts {
            last = self.execute_statement(s)?;
        }
        Ok(last)
    }

    /// Execute a parsed statement. Like quackdb, this is the engine's
    /// no-panic boundary: a panic escaping the Volcano executor is caught
    /// and surfaced as [`SqlError::Internal`] instead of unwinding into
    /// the host (the interior locks recover from poisoning).
    pub fn execute_statement(&self, stmt: &Statement) -> SqlResult<RowQueryResult> {
        let guard = ExecGuard::new(&self.limits.read());
        self.run_guarded(stmt, &guard, None)
    }

    fn run_guarded(
        &self,
        stmt: &Statement,
        guard: &ExecGuard,
        progress: Option<&QueryProgress>,
    ) -> SqlResult<RowQueryResult> {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.run_statement(stmt, guard, progress)
        })) {
            Ok(r) => r,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                Err(SqlError::internal(format!("executor panicked: {msg}")))
            }
        }
    }

    fn run_statement(
        &self,
        stmt: &Statement,
        guard: &ExecGuard,
        progress: Option<&QueryProgress>,
    ) -> SqlResult<RowQueryResult> {
        match stmt {
            Statement::Select(sel) => {
                let m = mduck_obs::metrics();
                m.queries_executed.inc(1);
                m.active_queries.add(1);
                let _active = GaugeGuard;
                let _query_span = mduck_obs::span("rowdb.query");
                let registry = self.registry.read();
                let bind_start = Instant::now();
                let plan = {
                    let _s = mduck_obs::span("rowdb.bind");
                    let mut binder = Binder::new(&self.catalog, &registry);
                    binder.bind_select(sel)?
                };
                m.rowdb_bind_ns.observe(bind_start.elapsed().as_nanos() as u64);
                let ctx = RowCtx::new(&self.catalog, &registry, guard).with_progress(progress);
                let exec_start = Instant::now();
                let rows = {
                    let _s = mduck_obs::span("rowdb.exec");
                    execute_select(&ctx, &plan, &OuterStack::EMPTY)?
                };
                m.rowdb_exec_ns.observe(exec_start.elapsed().as_nanos() as u64);
                Ok(RowQueryResult { schema: plan.output_schema, rows })
            }
            Statement::Explain { statement, analyze } => {
                // PostgreSQL-style indented text plan.
                let Statement::Select(sel) = statement.as_ref() else {
                    return Err(SqlError::Bind("EXPLAIN supports SELECT".into()));
                };
                let registry = self.registry.read();
                let mut binder = Binder::new(&self.catalog, &registry);
                let plan = binder.bind_select(sel)?;
                let ctx = RowCtx::new(&self.catalog, &registry, guard).with_progress(progress);
                let mut text = crate::exec::explain_select(&ctx, &plan)?;
                if *analyze {
                    // PostgreSQL appends execution totals below the plan.
                    let m = mduck_obs::metrics();
                    m.queries_executed.inc(1);
                    let exec_start = Instant::now();
                    let rows = {
                        let _s = mduck_obs::span("rowdb.exec");
                        execute_select(&ctx, &plan, &OuterStack::EMPTY)?
                    };
                    let elapsed = exec_start.elapsed();
                    m.rowdb_exec_ns.observe(elapsed.as_nanos() as u64);
                    text.push_str(&format!(
                        "Execution Time: {:.3} ms\n",
                        elapsed.as_secs_f64() * 1e3
                    ));
                    text.push_str(&format!("Rows Returned: {}\n", rows.len()));
                    text.push_str(&format!(
                        "Rows Scanned: {}\n",
                        *ctx.rows_scanned.borrow()
                    ));
                }
                Ok(RowQueryResult {
                    schema: Schema::new(vec![mduck_sql::Field {
                        name: "explain".into(),
                        table: None,
                        ty: LogicalType::Text,
                    }]),
                    rows: vec![vec![Value::text(text)]],
                })
            }
            Statement::Pragma { name, value } => {
                // The row engine is single-threaded by design (it stands in
                // for tuple-at-a-time PostgreSQL): `PRAGMA threads` is
                // accepted for cross-engine script compatibility but always
                // reports 1.
                if name == "threads" {
                    if let Some(v) = value {
                        let v = v.as_int().ok_or_else(|| {
                            SqlError::Bind(format!(
                                "PRAGMA threads expects an integer, got {v:?}"
                            ))
                        })?;
                        if v < 0 {
                            return Err(SqlError::OutOfRange(format!(
                                "PRAGMA threads expects a non-negative value, got {v}"
                            )));
                        }
                    }
                    let (schema, rows) = mduck_sql::introspect::threads_result(1);
                    return Ok(RowQueryResult { schema, rows });
                }
                if name == "memory_limit" {
                    if let Some(v) = value {
                        let limit = mduck_sql::introspect::parse_memory_limit(v)?;
                        self.limits.write().memory_limit = limit;
                    }
                    let (schema, rows) = mduck_sql::introspect::memory_limit_result(
                        self.limits.read().memory_limit,
                    );
                    return Ok(RowQueryResult { schema, rows });
                }
                if name == "wal" {
                    if let Some(v) = value {
                        let path = match v {
                            PragmaValue::Str(s) => s.clone(),
                            PragmaValue::Int(n) => {
                                return Err(SqlError::Bind(format!(
                                    "PRAGMA wal expects a path string, got {n}"
                                )))
                            }
                        };
                        let trimmed = path.trim();
                        if trimmed.is_empty()
                            || trimmed.eq_ignore_ascii_case("off")
                            || trimmed.eq_ignore_ascii_case("none")
                        {
                            self.detach_wal();
                        } else {
                            self.attach_wal(trimmed)?;
                        }
                    }
                    let shown = self.wal().map(|m| m.wal_path().display().to_string());
                    let (schema, rows) = mduck_sql::introspect::wal_result(shown);
                    return Ok(RowQueryResult { schema, rows });
                }
                if name == "wal_autocheckpoint" {
                    if let Some(v) = value {
                        let n = v.as_int().ok_or_else(|| {
                            SqlError::Bind(format!(
                                "PRAGMA wal_autocheckpoint expects a byte count, got {v:?}"
                            ))
                        })?;
                        if n < 0 {
                            return Err(SqlError::OutOfRange(format!(
                                "PRAGMA wal_autocheckpoint expects a non-negative byte \
                                 count, got {n}"
                            )));
                        }
                        match self.wal() {
                            Some(m) => m.set_auto_checkpoint(n as u64),
                            None => {
                                return Err(SqlError::execution(
                                    "no WAL attached; PRAGMA wal='path' first",
                                ))
                            }
                        }
                    }
                    let current = self.wal().map(|m| m.auto_checkpoint()).unwrap_or(0);
                    let (schema, rows) =
                        mduck_sql::introspect::wal_autocheckpoint_result(current);
                    return Ok(RowQueryResult { schema, rows });
                }
                match mduck_sql::introspect::pragma(name, value.as_ref())? {
                    Some((schema, rows)) => Ok(RowQueryResult { schema, rows }),
                    None => Err(SqlError::Catalog(format!("unknown pragma {name:?}"))),
                }
            }
            Statement::CreateTable { name, columns, if_not_exists } => {
                let cols = {
                    let registry = self.registry.read();
                    let mut cols = Vec::with_capacity(columns.len());
                    for (cname, tname) in columns {
                        cols.push((cname.clone(), registry.resolve_type(tname)?));
                    }
                    cols
                };
                let needed = {
                    let _commit = self.commit_lock.lock();
                    // Pre-check so an IF NOT EXISTS no-op logs nothing and a
                    // name clash fails before the WAL sees it.
                    if self.catalog.table_schema(name).is_some() {
                        if *if_not_exists {
                            return Ok(RowQueryResult {
                                schema: Schema::default(),
                                rows: Vec::new(),
                            });
                        }
                        return Err(SqlError::Catalog(format!("table {name:?} already exists")));
                    }
                    let needed = self.wal_append(&WalRecord::CreateTable {
                        name: name.to_ascii_lowercase(),
                        columns: cols.clone(),
                    })?;
                    self.catalog.create_table(name, cols, *if_not_exists)?;
                    needed
                };
                self.maybe_auto_checkpoint(needed);
                Ok(RowQueryResult { schema: Schema::default(), rows: Vec::new() })
            }
            Statement::DropTable { name, if_exists } => {
                let needed = {
                    let _commit = self.commit_lock.lock();
                    if self.catalog.table_schema(name).is_none() {
                        if *if_exists {
                            return Ok(RowQueryResult {
                                schema: Schema::default(),
                                rows: Vec::new(),
                            });
                        }
                        return Err(SqlError::Catalog(format!("table {name:?} does not exist")));
                    }
                    let needed = self
                        .wal_append(&WalRecord::DropTable { name: name.to_ascii_lowercase() })?;
                    self.catalog.drop_table(name, true)?;
                    needed
                };
                self.maybe_auto_checkpoint(needed);
                Ok(RowQueryResult { schema: Schema::default(), rows: Vec::new() })
            }
            Statement::CreateIndex { name, table, method, column } => {
                let needed = {
                    let _commit = self.commit_lock.lock();
                    self.create_index(name, table, method, column)?;
                    let resolved = if method.is_empty() {
                        "BTREE".to_string()
                    } else {
                        method.to_uppercase()
                    };
                    let record = WalRecord::CreateIndex {
                        name: name.clone(),
                        table: table.to_ascii_lowercase(),
                        method: resolved,
                        column: column.clone(),
                    };
                    match self.wal_append(&record) {
                        Ok(needed) => needed,
                        Err(e) => {
                            // Undo the in-memory index: dropping an access
                            // path is always safe, and the statement must
                            // not report failure while leaving it behind.
                            if let Ok(t) = self.catalog.get(table) {
                                t.write().indexes.retain(|i| i.name() != name);
                            }
                            return Err(e);
                        }
                    }
                };
                self.maybe_auto_checkpoint(needed);
                Ok(RowQueryResult { schema: Schema::default(), rows: Vec::new() })
            }
            Statement::Insert { table, columns, source } => {
                let (n, needed) = self.insert(table, columns.as_deref(), source)?;
                self.maybe_auto_checkpoint(needed);
                Ok(RowQueryResult {
                    schema: Schema::default(),
                    rows: vec![vec![Value::Int(n as i64)]],
                })
            }
            Statement::Update { table, sets, where_clause } => {
                let (n, needed) = self.update(table, sets, where_clause.as_ref())?;
                self.maybe_auto_checkpoint(needed);
                Ok(RowQueryResult {
                    schema: Schema::default(),
                    rows: vec![vec![Value::Int(n as i64)]],
                })
            }
            Statement::Delete { table, where_clause } => {
                let (n, needed) = self.delete(table, where_clause.as_ref())?;
                self.maybe_auto_checkpoint(needed);
                Ok(RowQueryResult {
                    schema: Schema::default(),
                    rows: vec![vec![Value::Int(n as i64)]],
                })
            }
            Statement::Checkpoint => {
                let ran = self.checkpoint()?;
                let (schema, rows) = mduck_sql::introspect::checkpoint_result(ran);
                Ok(RowQueryResult { schema, rows })
            }
        }
    }

    fn create_index(&self, name: &str, table: &str, method: &str, column: &str) -> SqlResult<()> {
        let method = if method.is_empty() { "BTREE".to_string() } else { method.to_uppercase() };
        let index_type = self
            .index_types
            .read()
            .get(&method)
            .ok_or_else(|| SqlError::Catalog(format!("unknown index method {method:?}")))?;
        let t = self.catalog.get(table)?;
        let mut t = t.write();
        let col = t
            .column_index(column)
            .ok_or_else(|| SqlError::Catalog(format!("no column {column:?} in {table:?}")))?;
        let ty = t.column_types[col].clone();
        if !index_type.can_index(&ty) {
            return Err(SqlError::Catalog(format!(
                "index method {method} cannot index type {}",
                ty.name()
            )));
        }
        if t.indexes.iter().any(|i| i.name() == name) {
            return Err(SqlError::Catalog(format!("index {name:?} already exists")));
        }
        let existing: Vec<Value> = t.rows.iter().map(|r| r[col].clone()).collect();
        let index = index_type.create(name, col, &ty, &existing)?;
        t.indexes.push(index);
        Ok(())
    }

    /// Returns `(rows inserted, auto-checkpoint needed)`. Commit
    /// discipline: the atomic heap append runs first, then the WAL
    /// record; a WAL failure rolls the heap back so a statement that
    /// reported an error is never durable or visible.
    fn insert(
        &self,
        table: &str,
        columns: Option<&[String]>,
        source: &InsertSource,
    ) -> SqlResult<(usize, bool)> {
        let registry = self.registry.read();
        let incoming: Vec<Vec<Value>> = match source {
            InsertSource::Values(rows) => {
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    let mut vals = Vec::with_capacity(row.len());
                    for e in row {
                        let bound =
                            mduck_sql::binder::bind_constant_expr(e, &self.catalog, &registry)?;
                        vals.push(eval(
                            &bound,
                            &[],
                            &OuterStack::EMPTY,
                            &mduck_sql::eval::NoSubqueries,
                        )?);
                    }
                    out.push(vals);
                }
                out
            }
            InsertSource::Select(sel) => {
                let mut binder = Binder::new(&self.catalog, &registry);
                let plan = binder.bind_select(sel)?;
                let guard = ExecGuard::new(&self.limits.read());
                let ctx = RowCtx::new(&self.catalog, &registry, &guard);
                execute_select(&ctx, &plan, &OuterStack::EMPTY)?
            }
        };
        let _commit = self.commit_lock.lock();
        let t = self.catalog.get(table)?;
        let mut t = t.write();
        let rows = match columns {
            None => incoming,
            Some(cols) => {
                let mut mapping = Vec::with_capacity(cols.len());
                for c in cols {
                    mapping.push(
                        t.column_index(c)
                            .ok_or_else(|| SqlError::Catalog(format!("no column {c:?}")))?,
                    );
                }
                let width = t.column_names.len();
                incoming
                    .into_iter()
                    .map(|row| {
                        let mut full = vec![Value::Null; width];
                        for (v, &dst) in row.into_iter().zip(&mapping) {
                            full[dst] = v;
                        }
                        full
                    })
                    .collect()
            }
        };
        // Implicit assignment casts to the column types.
        let types = t.column_types.clone();
        let mut coerced = Vec::with_capacity(rows.len());
        for row in rows {
            let mut cr = Vec::with_capacity(row.len());
            for (v, ty) in row.into_iter().zip(&types) {
                if v.is_null() || &v.logical_type() == ty || v.logical_type().coercible_to(ty) {
                    cr.push(v);
                } else if let Some(cast) = registry.resolve_cast(&v.logical_type(), ty) {
                    cr.push(cast(&[v])?);
                } else {
                    cr.push(v);
                }
            }
            coerced.push(cr);
        }
        let n = coerced.len();
        let pre_rows = t.rows.len();
        // Only pay for the WAL copy when a WAL is attached (the attach
        // itself takes the commit lock we hold, so this cannot race).
        let record = self.wal.read().is_some().then(|| WalRecord::Insert {
            table: t.name.clone(),
            rows: coerced.clone(),
        });
        t.append_rows(coerced)?;
        let needed = match record {
            None => false,
            Some(record) => match self.wal_append(&record) {
                Ok(needed) => needed,
                Err(e) => {
                    // Not logged → must not stay visible.
                    t.truncate_rows(pre_rows);
                    let all: Vec<usize> = (0..t.column_names.len()).collect();
                    self.rebuild_indexes(&mut t, &all)?;
                    return Err(e);
                }
            },
        };
        Ok((n, needed))
    }

    fn bind_table_schema(&self, table: &str) -> SqlResult<Schema> {
        let cols = self
            .catalog
            .table_schema(table)
            .ok_or_else(|| SqlError::Catalog(format!("table {table:?} does not exist")))?;
        Ok(Schema::new(
            cols.into_iter()
                .map(|(n, ty)| mduck_sql::Field {
                    name: n,
                    table: Some(table.to_ascii_lowercase()),
                    ty,
                })
                .collect(),
        ))
    }

    /// Returns `(rows updated, auto-checkpoint needed)`. Commit
    /// discipline: every new cell and every index rebuild is staged
    /// before the WAL record is appended; after the append only
    /// infallible assignments remain, so the table is untouched on any
    /// error (including a mid-scan eval failure) and never diverges from
    /// the log.
    fn update(
        &self,
        table: &str,
        sets: &[(String, mduck_sql::Expr)],
        where_clause: Option<&mduck_sql::Expr>,
    ) -> SqlResult<(usize, bool)> {
        let registry = self.registry.read();
        let schema = self.bind_table_schema(table)?;
        let mut binder = Binder::new(&self.catalog, &registry);
        let bound_sets: SqlResult<Vec<(usize, mduck_sql::BoundExpr)>> = sets
            .iter()
            .map(|(col, e)| {
                let idx = schema
                    .resolve(None, &col.to_ascii_lowercase())
                    .map_err(|_| SqlError::Catalog(format!("no column {col:?}")))?;
                Ok((idx, binder.bind_expr(e, &schema)?))
            })
            .collect();
        let bound_sets = bound_sets?;
        let bound_where = match where_clause {
            Some(w) => Some(binder.bind_expr(w, &schema)?),
            None => None,
        };
        let _commit = self.commit_lock.lock();
        let t = self.catalog.get(table)?;
        let mut t = t.write();
        let no_sub = mduck_sql::eval::NoSubqueries;
        // Stage 1: evaluate everything against the untouched rows.
        let mut cells: Vec<(u64, u64, Value)> = Vec::new();
        let mut updated = 0usize;
        for i in 0..t.rows.len() {
            let row = &t.rows[i];
            if let Some(w) = &bound_where {
                if !matches!(eval(w, row, &OuterStack::EMPTY, &no_sub)?, Value::Bool(true)) {
                    continue;
                }
            }
            for (col, e) in &bound_sets {
                cells.push((i as u64, *col as u64, eval(e, row, &OuterStack::EMPTY, &no_sub)?));
            }
            updated += 1;
        }
        if updated == 0 {
            return Ok((0, false));
        }
        // Stage 2: rebuild affected indexes from the staged values.
        let mut set_cols: Vec<usize> = bound_sets.iter().map(|(c, _)| *c).collect();
        set_cols.sort_unstable();
        set_cols.dedup();
        let mut overlay: BTreeMap<(usize, usize), &Value> = BTreeMap::new();
        for (r, c, v) in &cells {
            overlay.insert((*r as usize, *c as usize), v);
        }
        let staged_indexes = self.stage_index_rebuilds(&t, &set_cols, |col| {
            t.rows
                .iter()
                .enumerate()
                .map(|(r, row)| overlay.get(&(r, col)).map(|v| (*v).clone()).unwrap_or_else(|| row[col].clone()))
                .collect()
        })?;
        // Stage 3: log, then apply (infallible from here on).
        let needed =
            self.wal_append(&WalRecord::Update { table: t.name.clone(), cells: cells.clone() })?;
        for (r, c, v) in cells {
            t.rows[r as usize][c as usize] = v;
        }
        for (slot, index) in staged_indexes {
            t.indexes[slot] = index;
        }
        Ok((updated, needed))
    }

    /// Returns `(rows deleted, auto-checkpoint needed)`. Same staged
    /// discipline as `update`: victims are chosen and index rebuilds
    /// staged before the WAL append; the heap is only compacted after
    /// the record is durable.
    fn delete(
        &self,
        table: &str,
        where_clause: Option<&mduck_sql::Expr>,
    ) -> SqlResult<(usize, bool)> {
        let registry = self.registry.read();
        let schema = self.bind_table_schema(table)?;
        let mut binder = Binder::new(&self.catalog, &registry);
        let bound_where = match where_clause {
            Some(w) => Some(binder.bind_expr(w, &schema)?),
            None => None,
        };
        let _commit = self.commit_lock.lock();
        let t = self.catalog.get(table)?;
        let mut t = t.write();
        let no_sub = mduck_sql::eval::NoSubqueries;
        let mut deleted_rows: Vec<u64> = Vec::new();
        for (i, row) in t.rows.iter().enumerate() {
            let delete = match &bound_where {
                Some(w) => {
                    matches!(eval(w, row, &OuterStack::EMPTY, &no_sub)?, Value::Bool(true))
                }
                None => true,
            };
            if delete {
                deleted_rows.push(i as u64);
            }
        }
        if deleted_rows.is_empty() {
            return Ok((0, false));
        }
        let dead: std::collections::HashSet<u64> = deleted_rows.iter().copied().collect();
        let all: Vec<usize> = (0..t.column_names.len()).collect();
        let staged_indexes = self.stage_index_rebuilds(&t, &all, |col| {
            t.rows
                .iter()
                .enumerate()
                .filter(|(i, _)| !dead.contains(&(*i as u64)))
                .map(|(_, row)| row[col].clone())
                .collect()
        })?;
        let n = deleted_rows.len();
        let needed =
            self.wal_append(&WalRecord::Delete { table: t.name.clone(), rows: deleted_rows })?;
        let mut kept = Vec::with_capacity(t.rows.len() - n);
        for (i, row) in std::mem::take(&mut t.rows).into_iter().enumerate() {
            if !dead.contains(&(i as u64)) {
                kept.push(row);
            }
        }
        t.rows = kept;
        for (slot, index) in staged_indexes {
            t.indexes[slot] = index;
        }
        Ok((n, needed))
    }

    /// Execute a SELECT and return the result together with the analyzed
    /// plan footer totals (execution time, rows returned/scanned).
    pub fn execute_analyzed(&self, sql: &str) -> SqlResult<(RowQueryResult, f64)> {
        let start = Instant::now();
        let result = self.execute(sql)?;
        Ok((result, start.elapsed().as_secs_f64() * 1e3))
    }

    /// Build replacement indexes for every index over one of `cols`,
    /// without touching the table — `values_of(col)` supplies the
    /// post-statement values of that column. The caller assigns the
    /// returned `(slot, index)` pairs once the statement is committed.
    fn stage_index_rebuilds(
        &self,
        t: &crate::catalog::HeapTable,
        cols: &[usize],
        values_of: impl Fn(usize) -> Vec<Value>,
    ) -> SqlResult<Vec<(usize, Box<dyn crate::index::RowIndex>)>> {
        let index_types = self.index_types.read();
        let mut staged = Vec::new();
        for (slot, idx) in t.indexes.iter().enumerate() {
            let col = idx.column();
            if !cols.contains(&col) {
                continue;
            }
            let method = idx.method().to_string();
            let it = index_types
                .get(&method)
                .ok_or_else(|| SqlError::Catalog(format!("index method {method} vanished")))?;
            let ty = t.column_types[col].clone();
            let values = values_of(col);
            staged.push((slot, it.create(idx.name(), col, &ty, &values)?));
        }
        Ok(staged)
    }

    fn rebuild_indexes(
        &self,
        t: &mut crate::catalog::HeapTable,
        cols: &[usize],
    ) -> SqlResult<()> {
        let staged = {
            let tr: &crate::catalog::HeapTable = t;
            self.stage_index_rebuilds(tr, cols, |col| {
                tr.rows.iter().map(|r| r[col].clone()).collect()
            })?
        };
        for (slot, index) in staged {
            t.indexes[slot] = index;
        }
        Ok(())
    }
}

/// Decrements the active-query gauge on drop (error paths included).
struct GaugeGuard;

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        mduck_obs::metrics().active_queries.add(-1);
    }
}

/// Parse one statement, feeding the parse-phase latency histogram.
fn parse_timed(sql: &str) -> SqlResult<Statement> {
    let _s = mduck_obs::span("rowdb.parse");
    let start = Instant::now();
    let stmt = parse_statement(sql);
    mduck_obs::metrics().rowdb_parse_ns.observe(start.elapsed().as_nanos() as u64);
    stmt
}
