//! Row-at-a-time execution of bound plans — the PostgreSQL-style baseline.
//!
//! Every operator processes one `Vec<Value>` row at a time through the
//! shared tree-walking evaluator (no vectorized fast paths, no columnar
//! gathers). The planner mirrors PostgreSQL's choices: hash joins for
//! equality conjuncts, and — when indexes exist (the paper's "MobilityDB
//! with indexes" scenario) — index scans for single-table predicates and
//! GiST-style index nested-loop joins for spatiotemporal join predicates
//! like Q10's `t2.Trip && expandSpace(t1.trip::STBOX, 3.0)`.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use mduck_obs::QueryProgress;
use mduck_sql::ast::BinaryOp;
use mduck_sql::eval::{eval, OuterStack, SubqueryExec};
use mduck_sql::{
    split_conjuncts, BoundExpr, BoundFrom, BoundSelect, ExecGuard, Registry, SortKey, SqlError,
    SqlResult, Value,
};

use crate::catalog::RowCatalog;

type Row = Vec<Value>;

/// Execution context for one statement.
pub struct RowCtx<'a> {
    pub catalog: &'a RowCatalog,
    pub registry: &'a Registry,
    /// The per-statement guard: rows-scanned budget, memory accounting.
    pub guard: &'a ExecGuard,
    /// Live progress of the statement, if the caller registered one.
    pub progress: Option<&'a QueryProgress>,
    pub ctes: RefCell<HashMap<usize, Arc<Vec<Row>>>>,
    pub rows_scanned: RefCell<usize>,
    pub used_index: RefCell<bool>,
}

impl<'a> RowCtx<'a> {
    pub fn new(catalog: &'a RowCatalog, registry: &'a Registry, guard: &'a ExecGuard) -> Self {
        RowCtx {
            catalog,
            registry,
            guard,
            progress: None,
            ctes: RefCell::new(HashMap::new()),
            rows_scanned: RefCell::new(0),
            used_index: RefCell::new(false),
        }
    }

    pub fn with_progress(mut self, progress: Option<&'a QueryProgress>) -> Self {
        self.progress = progress;
        self
    }
}

/// Heap-tuple cost of one materialized row: a `Vec<Value>` header plus the
/// per-value estimates (`Value::approx_bytes`). The row engine charges
/// every row it materializes — scans, join builds/outputs, group states —
/// against the statement's memory scope, so `PRAGMA memory_limit` trips
/// identically to the vectorized engine's allocation-cumulative model.
fn row_bytes(row: &Row) -> u64 {
    24 + row.iter().map(Value::approx_bytes).sum::<u64>()
}

struct RowExecutor<'a, 'b> {
    ctx: &'b RowCtx<'a>,
}

impl SubqueryExec for RowExecutor<'_, '_> {
    fn execute(&self, plan: &BoundSelect, outer: &OuterStack<'_>) -> SqlResult<Vec<Row>> {
        execute_select(self.ctx, plan, outer)
    }
}

/// Tuple deforming + detoasting, as PostgreSQL performs on every heap
/// tuple access: extension values are materialized from their wire format
/// (the varlena/BLOB form MobilityDB stores) before the executor touches
/// them. The columnar engine does not pay this — DuckDB hands the flat
/// in-memory representation straight to MEOS — which is one of the
/// engine-level asymmetries Figure 12 measures.
fn detoast_row(ctx: &RowCtx<'_>, row: &Row) -> SqlResult<Row> {
    let mut out = Vec::with_capacity(row.len());
    for v in row {
        match v {
            Value::Ext(e) => match ctx.registry.ext_codec(e.type_name()) {
                Some(dec) => out.push(dec(&e.obj.to_bytes())?),
                None => out.push(v.clone()),
            },
            other => out.push(other.clone()),
        }
    }
    Ok(out)
}

// ------------------------------------------------------------ planning

/// A relation source with pushed-down predicates.
enum Source {
    Table { name: String, filters: Vec<BoundExpr>, index_probe: Option<(String, Value, BoundExpr)> },
    Cte { index: usize },
    Subquery { plan: Box<BoundSelect> },
    Series { args: Vec<BoundExpr> },
    /// `mduck_spans()`: snapshot of the tracing-span ring buffer.
    Spans,
    /// `mduck_progress()`: snapshot of the live query-progress registry.
    Progress,
    /// `mduck_query_log()`: snapshot of the in-memory query history.
    QueryLog,
}

/// How the next relation joins onto the accumulated left side.
enum JoinStrategy {
    /// Hash join on equality keys (right keys remapped locally).
    Hash { left_keys: Vec<BoundExpr>, right_keys: Vec<BoundExpr> },
    /// GiST index nested loop: probe the right table's index with an
    /// expression over the left row.
    IndexNl { op: String, probe: BoundExpr, original: BoundExpr },
    /// Plain nested loop (cross product).
    Cross,
}

struct JoinStep {
    source: Source,
    strategy: JoinStrategy,
    /// Conjuncts applicable once this relation is joined (global indices).
    post_filters: Vec<BoundExpr>,
}

struct RowPlan {
    first: Source,
    steps: Vec<JoinStep>,
    /// Predicates left for the very top (subquery-bearing etc.).
    remaining: Vec<BoundExpr>,
}

fn plan_rows(ctx: &RowCtx<'_>, plan: &BoundSelect) -> SqlResult<RowPlan> {
    let mut offsets = Vec::with_capacity(plan.from.len());
    let mut acc = 0usize;
    for f in &plan.from {
        offsets.push(acc);
        acc += f.schema().len();
    }
    let widths: Vec<usize> = plan.from.iter().map(|f| f.schema().len()).collect();

    let mut conjuncts = Vec::new();
    if let Some(f) = &plan.filter {
        split_conjuncts(f, &mut conjuncts);
    }
    let mut used = vec![false; conjuncts.len()];

    // Per-relation local predicates (remapped) + optional index probe.
    // Only base tables receive pushdown; predicates over CTE/subquery/
    // series sources are applied as post-join filters (they stay correct
    // because the accumulated row keeps global column positions).
    let mut sources: Vec<Source> = Vec::new();
    for (ri, f) in plan.from.iter().enumerate() {
        let (lo, hi) = (offsets[ri], offsets[ri] + widths[ri]);
        let mut local: Vec<(usize, BoundExpr)> = Vec::new();
        if matches!(f, BoundFrom::Table { .. }) {
            for (ci, c) in conjuncts.iter().enumerate() {
                if used[ci] || c.is_complex() {
                    continue;
                }
                let mut cols = Vec::new();
                c.collect_columns(&mut cols);
                if !cols.is_empty() && cols.iter().all(|&x| x >= lo && x < hi) {
                    local.push((ci, remap_columns(c, lo)));
                }
            }
        }
        let source = match f {
            BoundFrom::Table { name, .. } => {
                // Try a single-table index probe (constant pattern).
                let mut probe = None;
                let mut probe_ci = None;
                {
                    let t = ctx.catalog.get(name)?;
                    let t = t.read();
                    for (pos, (_, c)) in local.iter().enumerate() {
                        if let Some((col, op, constant)) = constant_pattern(c) {
                            if t.indexes.iter().any(|i| i.column() == col) {
                                probe = Some((op, constant, c.clone()));
                                probe_ci = Some(pos);
                                break;
                            }
                        }
                    }
                }
                if let Some(pos) = probe_ci {
                    let (ci, _) = local.remove(pos);
                    used[ci] = true;
                }
                for (ci, _) in &local {
                    used[*ci] = true;
                }
                Source::Table {
                    name: name.clone(),
                    filters: local.into_iter().map(|(_, c)| c).collect(),
                    index_probe: probe,
                }
            }
            BoundFrom::Cte { index, .. } => Source::Cte { index: *index },
            BoundFrom::Subquery { plan, .. } => Source::Subquery { plan: plan.clone() },
            BoundFrom::Series { args, .. } => Source::Series { args: args.clone() },
            BoundFrom::Spans { .. } => Source::Spans,
            BoundFrom::Progress { .. } => Source::Progress,
            BoundFrom::QueryLog { .. } => Source::QueryLog,
        };
        sources.push(source);
    }

    let mut it = sources.into_iter();
    let first = it.next().ok_or_else(|| SqlError::execution("empty FROM"))?;
    let mut steps = Vec::new();
    let mut width = widths[0];
    for (k, source) in it.enumerate() {
        let ri = k + 1;
        let (rlo, rhi) = (offsets[ri], offsets[ri] + widths[ri]);
        // Strategy 1: GiST index nested loop when the right side is a base
        // table with an index on a column compared by a registered
        // operator against a left-side expression.
        let mut strategy = None;
        if let Source::Table { name, index_probe: None, .. } = &source {
            let t = ctx.catalog.get(name)?;
            let t = t.read();
            for (ci, c) in conjuncts.iter().enumerate() {
                if used[ci] || c.is_complex() {
                    continue;
                }
                if let Some((col, op, probe)) = join_probe_pattern(c, rlo, rhi, width) {
                    if t.indexes.iter().any(|i| i.column() == col) {
                        strategy = Some(JoinStrategy::IndexNl {
                            op,
                            probe,
                            original: c.clone(),
                        });
                        used[ci] = true;
                        *ctx.used_index.borrow_mut() = true;
                        break;
                    }
                }
            }
        }
        // Strategy 2: hash join on equality conjuncts.
        if strategy.is_none() {
            let mut lkeys = Vec::new();
            let mut rkeys = Vec::new();
            for (ci, c) in conjuncts.iter().enumerate() {
                if used[ci] || c.is_complex() {
                    continue;
                }
                if let BoundExpr::Compare { op: BinaryOp::Eq, left, right } = c {
                    let (mut lc, mut rc) = (Vec::new(), Vec::new());
                    left.collect_columns(&mut lc);
                    right.collect_columns(&mut rc);
                    let in_left =
                        |cols: &[usize]| !cols.is_empty() && cols.iter().all(|&x| x < width);
                    let in_right = |cols: &[usize]| {
                        !cols.is_empty() && cols.iter().all(|&x| x >= rlo && x < rhi)
                    };
                    if in_left(&lc) && in_right(&rc) {
                        lkeys.push((**left).clone());
                        rkeys.push(remap_columns(right, rlo));
                        used[ci] = true;
                    } else if in_right(&lc) && in_left(&rc) {
                        lkeys.push((**right).clone());
                        rkeys.push(remap_columns(left, rlo));
                        used[ci] = true;
                    }
                }
            }
            strategy = Some(if lkeys.is_empty() {
                JoinStrategy::Cross
            } else {
                JoinStrategy::Hash { left_keys: lkeys, right_keys: rkeys }
            });
        }
        width = rhi;
        let mut post = Vec::new();
        for (ci, c) in conjuncts.iter().enumerate() {
            if used[ci] || c.is_complex() {
                continue;
            }
            let mut cols = Vec::new();
            c.collect_columns(&mut cols);
            if cols.iter().all(|&x| x < width) {
                used[ci] = true;
                post.push(c.clone());
            }
        }
        steps.push(JoinStep { source, strategy: strategy.unwrap(), post_filters: post });
    }
    let remaining: Vec<BoundExpr> = conjuncts
        .into_iter()
        .zip(used)
        .filter(|(_, u)| !u)
        .map(|(c, _)| c)
        .collect();
    Ok(RowPlan { first, steps, remaining })
}

/// `col <op> literal` over the local column space.
fn constant_pattern(c: &BoundExpr) -> Option<(usize, String, Value)> {
    match c {
        BoundExpr::Call { name, args, .. } if args.len() == 2 => match (&args[0], &args[1]) {
            (BoundExpr::ColumnRef { index, .. }, BoundExpr::Literal(v)) => {
                Some((*index, name.clone(), v.clone()))
            }
            (BoundExpr::Literal(v), BoundExpr::ColumnRef { index, .. }) if name == "&&" => {
                Some((*index, name.clone(), v.clone()))
            }
            _ => None,
        },
        BoundExpr::Compare { op: BinaryOp::Eq, left, right } => match (&**left, &**right) {
            (BoundExpr::ColumnRef { index, .. }, BoundExpr::Literal(v))
            | (BoundExpr::Literal(v), BoundExpr::ColumnRef { index, .. }) => {
                Some((*index, "=".into(), v.clone()))
            }
            _ => None,
        },
        _ => None,
    }
}

/// `right_col <op> expr(left)` join pattern (commuting `&&`). Returns the
/// right column (local), operator, and the probe expression over the left
/// row (global indices, which equal left-local indices).
fn join_probe_pattern(
    c: &BoundExpr,
    rlo: usize,
    rhi: usize,
    left_width: usize,
) -> Option<(usize, String, BoundExpr)> {
    let BoundExpr::Call { name, args, .. } = c else { return None };
    if args.len() != 2 {
        return None;
    }
    let col_of_right = |e: &BoundExpr| match e {
        BoundExpr::ColumnRef { index, .. } if *index >= rlo && *index < rhi => Some(*index - rlo),
        _ => None,
    };
    let over_left = |e: &BoundExpr| {
        let mut cols = Vec::new();
        e.collect_columns(&mut cols);
        !cols.is_empty() && cols.iter().all(|&x| x < left_width)
    };
    if let Some(col) = col_of_right(&args[0]) {
        if over_left(&args[1]) {
            return Some((col, name.clone(), args[1].clone()));
        }
    }
    if name == "&&" || name == "=" {
        if let Some(col) = col_of_right(&args[1]) {
            if over_left(&args[0]) {
                return Some((col, name.clone(), args[0].clone()));
            }
        }
    }
    None
}

fn remap_columns(e: &BoundExpr, offset: usize) -> BoundExpr {
    use BoundExpr::*;
    match e {
        ColumnRef { index, ty } => ColumnRef { index: index - offset, ty: ty.clone() },
        Call { name, func, args, ty, strict } => Call {
            name: name.clone(),
            func: func.clone(),
            args: args.iter().map(|a| remap_columns(a, offset)).collect(),
            ty: ty.clone(),
            strict: *strict,
        },
        Compare { op, left, right } => Compare {
            op: *op,
            left: Box::new(remap_columns(left, offset)),
            right: Box::new(remap_columns(right, offset)),
        },
        Arith { op, left, right, ty } => Arith {
            op: *op,
            left: Box::new(remap_columns(left, offset)),
            right: Box::new(remap_columns(right, offset)),
            ty: ty.clone(),
        },
        And(es) => And(es.iter().map(|x| remap_columns(x, offset)).collect()),
        Or(es) => Or(es.iter().map(|x| remap_columns(x, offset)).collect()),
        Not(x) => Not(Box::new(remap_columns(x, offset))),
        IsNull { expr, negated } => {
            IsNull { expr: Box::new(remap_columns(expr, offset)), negated: *negated }
        }
        InList { expr, list, negated } => InList {
            expr: Box::new(remap_columns(expr, offset)),
            list: list.iter().map(|x| remap_columns(x, offset)).collect(),
            negated: *negated,
        },
        other => other.clone(),
    }
}

/// Render a PostgreSQL-style indented text plan for EXPLAIN.
pub fn explain_select(ctx: &RowCtx<'_>, plan: &BoundSelect) -> SqlResult<String> {
    let mut out = String::new();
    if plan.limit.is_some() || plan.offset.is_some() {
        let mut parts = Vec::new();
        if let Some(l) = plan.limit {
            parts.push(format!("{l} rows"));
        }
        if let Some(o) = plan.offset {
            parts.push(format!("offset {o}"));
        }
        out.push_str(&format!("Limit ({})\n", parts.join(", ")));
    }
    if !plan.order_by.is_empty() {
        out.push_str("Sort\n");
    }
    if plan.distinct {
        out.push_str("Unique\n");
    }
    if plan.aggregated {
        out.push_str(&format!(
            "HashAggregate (groups: {}, aggregates: {})\n",
            plan.group_by.len(),
            plan.aggregates.len()
        ));
    }
    if plan.from.is_empty() {
        out.push_str("Result\n");
        return Ok(out);
    }
    let rp = plan_rows(ctx, plan)?;
    let mut depth = 0usize;
    // Render join steps top-down (last join is outermost).
    for step in rp.steps.iter().rev() {
        let pad = "  ".repeat(depth);
        match &step.strategy {
            JoinStrategy::Hash { left_keys, .. } => {
                out.push_str(&format!("{pad}Hash Join (keys: {})\n", left_keys.len()))
            }
            JoinStrategy::IndexNl { op, .. } => out.push_str(&format!(
                "{pad}Nested Loop (index probe: {op} via GiST)\n"
            )),
            JoinStrategy::Cross => out.push_str(&format!("{pad}Nested Loop\n")),
        }
        depth += 1;
    }
    let pad = "  ".repeat(depth);
    render_source(&mut out, &pad, &rp.first);
    for step in &rp.steps {
        render_source(&mut out, &pad, &step.source);
    }
    Ok(out)
}

fn render_source(out: &mut String, pad: &str, s: &Source) {
    match s {
        Source::Table { name, filters, index_probe } => {
            if let Some((op, _, _)) = index_probe {
                out.push_str(&format!("{pad}Index Scan on {name} ({op} probe)\n"));
            } else {
                out.push_str(&format!("{pad}Seq Scan on {name}"));
                if !filters.is_empty() {
                    out.push_str(&format!("  Filter: {} condition(s)", filters.len()));
                }
                out.push('\n');
            }
        }
        Source::Cte { index } => out.push_str(&format!("{pad}CTE Scan (slot {index})\n")),
        Source::Subquery { .. } => out.push_str(&format!("{pad}Subquery Scan\n")),
        Source::Series { .. } => out.push_str(&format!("{pad}Function Scan on generate_series\n")),
        Source::Spans => out.push_str(&format!("{pad}Function Scan on mduck_spans\n")),
        Source::Progress => out.push_str(&format!("{pad}Function Scan on mduck_progress\n")),
        Source::QueryLog => out.push_str(&format!("{pad}Function Scan on mduck_query_log\n")),
    }
}

// ------------------------------------------------------------ execution

fn scan_source(
    ctx: &RowCtx<'_>,
    source: &Source,
    outer: &OuterStack<'_>,
) -> SqlResult<Vec<Row>> {
    let exec = RowExecutor { ctx };
    match source {
        Source::Table { name, filters, index_probe } => {
            let t = ctx.catalog.get(name)?;
            let t = t.read();
            let mut out = Vec::new();
            let candidate_rows: Option<Vec<u64>> = match index_probe {
                Some((op, constant, _)) => {
                    let mut hit = None;
                    for idx in &t.indexes {
                        if let Some(rows) = idx.try_scan(op, constant)? {
                            hit = Some(rows);
                            break;
                        }
                    }
                    if hit.is_some() {
                        *ctx.used_index.borrow_mut() = true;
                    }
                    hit
                }
                None => None,
            };
            let mut process = |row: Row| -> SqlResult<()> {
                for f in filters {
                    if !matches!(eval(f, &row, outer, &exec)?, Value::Bool(true)) {
                        return Ok(());
                    }
                }
                ctx.guard.charge_mem(row_bytes(&row))?;
                out.push(row);
                Ok(())
            };
            let candidates;
            match (candidate_rows, index_probe) {
                (Some(mut ids), Some((_, _, original))) => {
                    ids.sort_unstable();
                    candidates = ids.len();
                    *ctx.rows_scanned.borrow_mut() += ids.len();
                    ctx.guard.note_scanned(ids.len());
                    let m = mduck_obs::metrics();
                    m.index_probes.inc(1);
                    m.rows_scanned.inc(ids.len() as u64);
                    if let Some(pr) = ctx.progress {
                        pr.add_total(ids.len() as u64);
                    }
                    for id in ids {
                        if let Some(pr) = ctx.progress {
                            pr.add_done(1);
                        }
                        let row = detoast_row(ctx, &t.rows[id as usize])?;
                        // Re-check the indexed predicate (the index may be
                        // lossy) plus residual filters.
                        if !matches!(eval(original, &row, outer, &exec)?, Value::Bool(true)) {
                            continue;
                        }
                        process(row)?;
                    }
                }
                _ => {
                    candidates = t.rows.len();
                    *ctx.rows_scanned.borrow_mut() += t.rows.len();
                    ctx.guard.note_scanned(t.rows.len());
                    let m = mduck_obs::metrics();
                    m.full_scans.inc(1);
                    m.rows_scanned.inc(t.rows.len() as u64);
                    if let Some(pr) = ctx.progress {
                        pr.add_total(t.rows.len() as u64);
                    }
                    for stored in &t.rows {
                        if let Some(pr) = ctx.progress {
                            pr.add_done(1);
                        }
                        let row = detoast_row(ctx, stored)?;
                        if let Some((_, _, original)) = index_probe {
                            if !matches!(
                                eval(original, &row, outer, &exec)?,
                                Value::Bool(true)
                            ) {
                                continue;
                            }
                        }
                        process(row)?;
                    }
                }
            }
            mduck_obs::metrics()
                .rows_filtered
                .inc(candidates.saturating_sub(out.len()) as u64);
            Ok(out)
        }
        Source::Cte { index } => {
            let ctes = ctx.ctes.borrow();
            let rows = ctes
                .get(index)
                .ok_or_else(|| SqlError::execution(format!("CTE {index} not materialized")))?;
            Ok((**rows).clone())
        }
        Source::Subquery { plan } => execute_select(ctx, plan, outer),
        Source::Series { args } => {
            let vals: SqlResult<Vec<Value>> =
                args.iter().map(|a| eval(a, &[], outer, &exec)).collect();
            let vals = vals?;
            let start = vals[0].as_int()?;
            let stop = if vals.len() > 1 { vals[1].as_int()? } else { start };
            let step = if vals.len() > 2 { vals[2].as_int()? } else { 1 };
            if step == 0 {
                return Err(SqlError::execution("generate_series step must be nonzero"));
            }
            let mut out = Vec::new();
            let mut v = start;
            while (step > 0 && v <= stop) || (step < 0 && v >= stop) {
                out.push(vec![Value::Int(v)]);
                v += step;
            }
            Ok(out)
        }
        Source::Spans => Ok(mduck_sql::introspect::span_rows()),
        Source::Progress => Ok(mduck_sql::introspect::progress_rows()),
        Source::QueryLog => Ok(mduck_sql::introspect::query_log_rows()),
    }
}

/// Execute a bound SELECT, row at a time.
pub fn execute_select(
    ctx: &RowCtx<'_>,
    plan: &BoundSelect,
    outer: &OuterStack<'_>,
) -> SqlResult<Vec<Row>> {
    let exec = RowExecutor { ctx };

    // CTEs first.
    for cte in &plan.ctes {
        let rows = execute_select(ctx, &cte.plan, outer)?;
        ctx.ctes.borrow_mut().insert(cte.index, Arc::new(rows));
    }

    // FROM/WHERE pipeline.
    let mut rows: Vec<Row> = if plan.from.is_empty() {
        vec![Vec::new()]
    } else {
        let rp = plan_rows(ctx, plan)?;
        let mut acc = scan_source(ctx, &rp.first, outer)?;
        for step in &rp.steps {
            acc = match &step.strategy {
                JoinStrategy::Cross => {
                    let right = scan_source(ctx, &step.source, outer)?;
                    let mut out = Vec::new();
                    for l in &acc {
                        for r in &right {
                            let mut row = l.clone();
                            row.extend(r.iter().cloned());
                            ctx.guard.charge_mem(row_bytes(&row))?;
                            out.push(row);
                        }
                    }
                    out
                }
                JoinStrategy::Hash { left_keys, right_keys } => {
                    let right = scan_source(ctx, &step.source, outer)?;
                    let mut table: HashMap<Vec<u8>, Vec<usize>> =
                        HashMap::with_capacity(right.len());
                    'build: for (i, r) in right.iter().enumerate() {
                        let mut key = Vec::new();
                        for k in right_keys {
                            let v = eval(k, r, outer, &exec)?;
                            if v.is_null() {
                                continue 'build;
                            }
                            v.hash_key(&mut key);
                        }
                        // Build-side state: the serialized key plus a
                        // bucket slot per entry.
                        ctx.guard.charge_mem(32 + key.len() as u64)?;
                        table.entry(key).or_default().push(i);
                    }
                    let mut out = Vec::new();
                    'probe: for l in &acc {
                        let mut key = Vec::new();
                        for k in left_keys {
                            let v = eval(k, l, outer, &exec)?;
                            if v.is_null() {
                                continue 'probe;
                            }
                            v.hash_key(&mut key);
                        }
                        if let Some(ms) = table.get(&key) {
                            for &i in ms {
                                let mut row = l.clone();
                                row.extend(right[i].iter().cloned());
                                ctx.guard.charge_mem(row_bytes(&row))?;
                                out.push(row);
                            }
                        }
                    }
                    out
                }
                JoinStrategy::IndexNl { op, probe, original } => {
                    let Source::Table { name, filters, .. } = &step.source else {
                        return Err(SqlError::execution("index NL join needs a base table"));
                    };
                    let t = ctx.catalog.get(name)?;
                    let t = t.read();
                    let mut out = Vec::new();
                    for l in &acc {
                        let probe_val = eval(probe, l, outer, &exec)?;
                        if probe_val.is_null() {
                            continue;
                        }
                        let mut ids = None;
                        for idx in &t.indexes {
                            if let Some(hit) = idx.try_scan(op, &probe_val)? {
                                ids = Some(hit);
                                break;
                            }
                        }
                        let Some(ids) = ids else {
                            return Err(SqlError::execution(
                                "planned index NL join but no index accepted the probe",
                            ));
                        };
                        *ctx.rows_scanned.borrow_mut() += ids.len();
                        ctx.guard.note_scanned(ids.len());
                        let m = mduck_obs::metrics();
                        m.index_probes.inc(1);
                        m.rows_scanned.inc(ids.len() as u64);
                        'cand: for id in ids {
                            let r = detoast_row(ctx, &t.rows[id as usize])?;
                            for f in filters {
                                if !matches!(eval(f, &r, outer, &exec)?, Value::Bool(true)) {
                                    continue 'cand;
                                }
                            }
                            let mut row = l.clone();
                            row.extend(r.iter().cloned());
                            // Re-check the join predicate exactly.
                            if matches!(eval(original, &row, outer, &exec)?, Value::Bool(true)) {
                                ctx.guard.charge_mem(row_bytes(&row))?;
                                out.push(row);
                            }
                        }
                    }
                    out
                }
            };
            mduck_obs::metrics().rows_joined.inc(acc.len() as u64);
            for f in &step.post_filters {
                let before = acc.len();
                let mut kept = Vec::with_capacity(acc.len());
                for row in acc {
                    if matches!(eval(f, &row, outer, &exec)?, Value::Bool(true)) {
                        kept.push(row);
                    }
                }
                mduck_obs::metrics().rows_filtered.inc((before - kept.len()) as u64);
                acc = kept;
            }
        }
        for f in &rp.remaining {
            let before = acc.len();
            let mut kept = Vec::with_capacity(acc.len());
            for row in acc {
                if matches!(eval(f, &row, outer, &exec)?, Value::Bool(true)) {
                    kept.push(row);
                }
            }
            mduck_obs::metrics().rows_filtered.inc((before - kept.len()) as u64);
            acc = kept;
        }
        acc
    };

    // Aggregation.
    if plan.aggregated {
        rows = aggregate_rows(ctx, plan, rows, outer)?;
        if let Some(h) = &plan.having {
            let mut kept = Vec::with_capacity(rows.len());
            for row in rows {
                if matches!(eval(h, &row, outer, &exec)?, Value::Bool(true)) {
                    kept.push(row);
                }
            }
            rows = kept;
        }
    }

    // Projection.
    let needs_env = plan.order_by.iter().any(|o| matches!(o.key, SortKey::Input(_)));
    let mut out_rows: Vec<Row> = Vec::with_capacity(rows.len());
    let mut env_rows: Vec<Row> = Vec::new();
    for row in rows {
        let mut out = Vec::with_capacity(plan.projections.len());
        for p in &plan.projections {
            out.push(eval(p, &row, outer, &exec)?);
        }
        out_rows.push(out);
        if needs_env {
            env_rows.push(row);
        }
    }

    // DISTINCT.
    if plan.distinct {
        let mut seen = std::collections::HashSet::new();
        let mut kept = Vec::with_capacity(out_rows.len());
        let mut kept_env = Vec::new();
        for (i, row) in out_rows.into_iter().enumerate() {
            let mut key = Vec::new();
            for v in &row {
                v.hash_key(&mut key);
            }
            if seen.insert(key) {
                if needs_env {
                    kept_env.push(env_rows[i].clone());
                }
                kept.push(row);
            }
        }
        out_rows = kept;
        env_rows = kept_env;
    }

    // ORDER BY.
    if !plan.order_by.is_empty() {
        let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(out_rows.len());
        for (i, row) in out_rows.into_iter().enumerate() {
            let mut keys = Vec::with_capacity(plan.order_by.len());
            for o in &plan.order_by {
                keys.push(match &o.key {
                    SortKey::Output(j) => row[*j].clone(),
                    SortKey::Input(e) => eval(e, &env_rows[i], outer, &exec)?,
                });
            }
            keyed.push((keys, row));
        }
        let mut cmp_err = None;
        keyed.sort_by(|(a, _), (b, _)| {
            mduck_sql::cmp_order_keys(a, b, &plan.order_by, &mut cmp_err)
        });
        if let Some(e) = cmp_err {
            return Err(e);
        }
        out_rows = keyed.into_iter().map(|(_, r)| r).collect();
    }

    // OFFSET / LIMIT.
    if let Some(off) = plan.offset {
        let off = off as usize;
        out_rows = if off >= out_rows.len() { Vec::new() } else { out_rows.split_off(off) };
    }
    if let Some(lim) = plan.limit {
        out_rows.truncate(lim as usize);
    }
    Ok(out_rows)
}

fn aggregate_rows(
    ctx: &RowCtx<'_>,
    plan: &BoundSelect,
    rows: Vec<Row>,
    outer: &OuterStack<'_>,
) -> SqlResult<Vec<Row>> {
    let exec = RowExecutor { ctx };
    struct Group {
        keys: Vec<Value>,
        states: Vec<Box<dyn mduck_sql::AggState>>,
        distinct_seen: Vec<Option<std::collections::HashSet<Vec<u8>>>>,
    }
    let mut groups: HashMap<Vec<u8>, Group> = HashMap::new();
    for row in &rows {
        let mut key = Vec::new();
        let mut keys = Vec::with_capacity(plan.group_by.len());
        for g in &plan.group_by {
            let v = eval(g, row, outer, &exec)?;
            v.hash_key(&mut key);
            keys.push(v);
        }
        let group = match groups.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                // New group: charge the key copies plus a fixed estimate
                // per aggregate state, so unbounded-cardinality GROUP BYs
                // trip `PRAGMA memory_limit` like the vectorized engine.
                ctx.guard.charge_mem(
                    64 + keys.iter().map(Value::approx_bytes).sum::<u64>()
                        + plan.aggregates.len() as u64 * 48,
                )?;
                e.insert(Group {
                    keys,
                    states: plan.aggregates.iter().map(|a| (a.factory)()).collect(),
                    distinct_seen: plan
                        .aggregates
                        .iter()
                        .map(|a| a.distinct.then(std::collections::HashSet::new))
                        .collect(),
                })
            }
        };
        for (ai, agg) in plan.aggregates.iter().enumerate() {
            let mut args = Vec::with_capacity(agg.args.len());
            for a in &agg.args {
                args.push(eval(a, row, outer, &exec)?);
            }
            if let Some(seen) = &mut group.distinct_seen[ai] {
                let mut akey = Vec::new();
                for a in &args {
                    a.hash_key(&mut akey);
                }
                if !seen.insert(akey) {
                    continue;
                }
            }
            group.states[ai].update(&args)?;
        }
    }
    if groups.is_empty() && plan.group_by.is_empty() {
        let mut states: Vec<Box<dyn mduck_sql::AggState>> =
            plan.aggregates.iter().map(|a| (a.factory)()).collect();
        let mut row = Vec::new();
        for s in &mut states {
            row.push(s.finalize()?);
        }
        return Ok(vec![row]);
    }
    let mut out = Vec::with_capacity(groups.len());
    for (_, mut g) in groups {
        let mut row = g.keys;
        for s in &mut g.states {
            row.push(s.finalize()?);
        }
        out.push(row);
    }
    Ok(out)
}
