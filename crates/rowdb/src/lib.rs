//! # mduck-rowdb — a row-oriented, tuple-at-a-time SQL engine
//!
//! The PostgreSQL/MobilityDB baseline of the MobilityDuck reproduction:
//! heap tables stored row-major, one-row-at-a-time evaluation through the
//! shared expression interpreter, hash joins for equality predicates, and
//! — when indexes are created, reproducing the paper's "MobilityDB with
//! indexes" scenario — B-tree (equality) and GiST-style (spatiotemporal)
//! index scans plus index nested-loop joins.
//!
//! It shares the SQL frontend (`mduck-sql`) and the extension function
//! registry with `quackdb`, so benchmark differences isolate the execution
//! model — exactly the variable the paper's Figure 12 varies.

pub mod catalog;
pub mod database;
pub mod exec;
pub mod index;

pub use catalog::{HeapTable, RowCatalog};
pub use database::{RowDatabase, RowQueryResult};
pub use exec::{execute_select, RowCtx};
pub use index::{BTreeIndexType, RowIndex, RowIndexRegistry, RowIndexType};
