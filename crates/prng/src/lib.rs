//! Small, deterministic, dependency-free PRNG for the whole workspace.
//!
//! Replaces the external `rand` crate so that `cargo build` works fully
//! offline. Two generators are provided:
//!
//! * [`SplitMix64`] — the classic 64-bit mixer (Steele, Lea & Flood);
//!   used standalone for cheap streams and to seed the main generator.
//! * [`StdRng`] — xoshiro256** (Blackman & Vigna), seeded from a single
//!   `u64` through SplitMix64, exactly as the reference implementation
//!   recommends. This is the workhorse for data generation, benchmarks,
//!   and the deterministic fuzz harness.
//!
//! The API mirrors the subset of `rand` the workspace used
//! (`StdRng::seed_from_u64`, `rng.random_range(lo..hi)`), so call sites
//! only swap the import path.

/// Seeding by a single `u64`, like `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw generator contract: a stream of 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fill a byte slice with generator output.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

/// SplitMix64: tiny state, excellent mixing, good enough for seeding and
/// for cheap auxiliary streams.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the workspace's standard generator. 256 bits of state,
/// period 2^256 - 1, passes BigCrush; seeded from a `u64` via SplitMix64.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = sm.next_u64();
        }
        // An all-zero state would be a fixed point; SplitMix64 can't emit
        // four zero words in a row, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types that can be sampled uniformly from a half-open `lo..hi` or
/// inclusive `lo..=hi` range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Sample from the closed range `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Lemire-style unbiased rejection via 128-bit multiply: uniform in
/// `[0, span)`. `span` must be nonzero.
fn lemire<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    let mut m = (rng.next_u64() as u128) * (span as u128);
    let mut low = m as u64;
    if low < span {
        let threshold = span.wrapping_neg() % span;
        while low < threshold {
            m = (rng.next_u64() as u128) * (span as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_sample_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo < hi, "random_range requires a non-empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                let offset = lemire(rng, span);
                ((lo as $wide).wrapping_add(offset as $wide)) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi, "random_range requires a non-empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    // Whole 64-bit domain: every word is a valid sample.
                    return ((lo as $wide).wrapping_add(rng.next_u64() as $wide)) as $t;
                }
                let offset = lemire(rng, span + 1);
                ((lo as $wide).wrapping_add(offset as $wide)) as $t
            }
        }
    )*};
}

impl_sample_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        debug_assert!(lo < hi, "random_range requires a non-empty range");
        lo + rng.next_f64() * (hi - lo)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        debug_assert!(lo <= hi, "random_range requires a non-empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        debug_assert!(lo < hi, "random_range requires a non-empty range");
        lo + (rng.next_f64() as f32) * (hi - lo)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        debug_assert!(lo <= hi, "random_range requires a non-empty range");
        lo + (rng.next_f64() as f32) * (hi - lo)
    }
}

/// A range argument for [`RngExt::random_range`]: either `lo..hi` or
/// `lo..=hi`, as with `rand`.
pub trait UniformRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> UniformRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> UniformRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// The user-facing convenience trait, mirroring `rand::Rng`'s
/// `random_range`/`random_bool` surface.
pub trait RngExt: RngCore {
    /// Uniform sample from `lo..hi` or `lo..=hi`.
    fn random_range<T: SampleUniform, U: UniformRange<T>>(&mut self, range: U) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Pick a uniformly random element of a non-empty slice.
    fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let i = self.random_range(0..items.len());
            items.get(i)
        }
    }

    /// Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.random_range(0..i + 1);
            items.swap(i, j);
        }
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// `rand`-style module alias so call sites can keep `rngs::StdRng` paths.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain
        // SplitMix64 C implementation.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(first, sm2.next_u64(), "determinism");
        assert_ne!(first, sm.next_u64(), "stream advances");
    }

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(-5i64..17);
            assert!((-5..17).contains(&x));
            let u = rng.random_range(0usize..3);
            assert!(u < 3);
            let f = rng.random_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn inclusive_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut saw_max = false;
        for _ in 0..10_000 {
            let b = rng.random_range(0..=255u8);
            saw_max |= b == 255;
            let x = rng.random_range(-3i64..=3);
            assert!((-3..=3).contains(&x));
            // Degenerate and full-domain closed ranges are legal.
            assert_eq!(rng.random_range(7u32..=7), 7);
            let _ = rng.random_range(u64::MIN..=u64::MAX);
            let _ = rng.random_range(i64::MIN..=i64::MAX);
        }
        assert!(saw_max, "u8 inclusive upper bound is reachable");
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
