//! All 17 BerlinMOD-Hanoi benchmark queries, executed on the vectorized
//! engine (MobilityDuck) and on the row engine with and without indexes
//! (the paper's two MobilityDB scenarios) — results must agree exactly.

use berlinmod::{benchmark_queries, usecase_queries, BerlinModData, RoadNetwork, ScaleFactor};
use mduck_rowdb::RowDatabase;
use quackdb::Database;

struct Rig {
    vdb: Database,
    rdb_plain: RowDatabase,
    rdb_indexed: RowDatabase,
}

fn rig() -> Rig {
    let net = RoadNetwork::generate(42);
    // A reduced scale keeps the three-engine comparison fast in CI; the
    // bench harness runs the paper's full SF range.
    let data = BerlinModData::generate(&net, ScaleFactor(0.0003), 42);
    let vdb = Database::new();
    mobilityduck::load(&vdb);
    data.load_into_quack(&vdb).unwrap();
    let rdb_plain = RowDatabase::new();
    mobilityduck::load_row(&rdb_plain);
    data.load_into_row(&rdb_plain, false).unwrap();
    let rdb_indexed = RowDatabase::new();
    mobilityduck::load_row(&rdb_indexed);
    data.load_into_row(&rdb_indexed, true).unwrap();
    Rig { vdb, rdb_plain, rdb_indexed }
}

fn rows_of_quack(db: &Database, sql: &str) -> Vec<Vec<String>> {
    db.execute(sql)
        .unwrap_or_else(|e| panic!("quackdb failed: {e}\n{sql}"))
        .rows
        .iter()
        .map(|r| r.iter().map(|v| v.to_string()).collect())
        .collect()
}

fn rows_of_row(db: &RowDatabase, sql: &str, tag: &str) -> Vec<Vec<String>> {
    db.execute(sql)
        .unwrap_or_else(|e| panic!("rowdb ({tag}) failed: {e}\n{sql}"))
        .rows
        .iter()
        .map(|r| r.iter().map(|v| v.to_string()).collect())
        .collect()
}

/// Floats can differ in the last ulps between the vectorized and row
/// paths (different summation orders in aggregates); compare numerically.
fn rows_equal(a: &[Vec<String>], b: &[Vec<String>]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    for (ra, rb) in a.iter().zip(b) {
        if ra.len() != rb.len() {
            return false;
        }
        for (ca, cb) in ra.iter().zip(rb) {
            if ca == cb {
                continue;
            }
            match (ca.parse::<f64>(), cb.parse::<f64>()) {
                (Ok(x), Ok(y)) => {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    if (x - y).abs() / scale > 1e-9 {
                        return false;
                    }
                }
                _ => return false,
            }
        }
    }
    true
}

#[test]
fn all_17_queries_agree_across_engines_and_scenarios() {
    let rig = rig();
    let mut nonempty = 0;
    for (id, question, sql) in benchmark_queries() {
        let v = rows_of_quack(&rig.vdb, sql);
        let p = rows_of_row(&rig.rdb_plain, sql, "plain");
        let x = rows_of_row(&rig.rdb_indexed, sql, "indexed");
        assert!(
            rows_equal(&v, &p),
            "Q{id} ({question}): quackdb vs rowdb-plain differ\nquack: {v:?}\nrow:   {p:?}"
        );
        assert!(
            rows_equal(&v, &x),
            "Q{id} ({question}): quackdb vs rowdb-indexed differ\nquack: {v:?}\nrow:   {x:?}"
        );
        if !v.is_empty() {
            nonempty += 1;
        }
    }
    // The workload must actually exercise the operators: the large
    // majority of queries return rows at this scale.
    assert!(nonempty >= 12, "only {nonempty}/17 queries returned rows");
}

#[test]
fn usecase_queries_run_on_the_vectorized_engine() {
    let rig = rig();
    for (name, sql) in usecase_queries() {
        let rows = rows_of_quack(&rig.vdb, sql);
        match name {
            "distance_per_district" | "top6_districts_by_trips" | "all_trajectories"
            | "trip_crossing_most_districts" => {
                assert!(!rows.is_empty(), "{name} returned nothing")
            }
            _ => {} // close pairs / crossings may legitimately be empty at tiny scale
        }
    }
}
