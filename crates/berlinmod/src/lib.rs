//! # berlinmod — the BerlinMOD-Hanoi benchmark (§5)
//!
//! A from-scratch reproduction of the paper's benchmark kit: a synthetic
//! Hanoi-like road network with the city's 12 urban districts
//! ([`network`]), the BerlinMOD trip-generation model calibrated to the
//! paper's Tables 2–3 ([`trips`]), dataset assembly and loading into both
//! engines ([`dataset`]), the 17 benchmark queries and the §6.2 use-case
//! analytics ([`queries`]), and GeoJSON exports ([`geojson`]).

pub mod dataset;
pub mod geojson;
pub mod network;
pub mod queries;
pub mod trips;

pub use dataset::BerlinModData;
pub use network::{RoadNetwork, NETWORK_SRID};
pub use queries::{benchmark_queries, usecase_queries};
pub use trips::{generate_trips, ScaleFactor, Trip, Vehicle};
