//! GeoJSON export of trips and districts — the paper publishes these for
//! Kepler.gl visualization (§5.2); we produce the same artifacts.

use mduck_geo::geometry::GeomData;
use mduck_geo::Geometry;

use crate::dataset::BerlinModData;

/// Serialize a geometry to a GeoJSON geometry object.
pub fn geometry_to_geojson(g: &Geometry) -> String {
    fn coords(ps: &[mduck_geo::point::Point]) -> String {
        let inner: Vec<String> = ps.iter().map(|p| format!("[{},{}]", p.x, p.y)).collect();
        format!("[{}]", inner.join(","))
    }
    match &g.data {
        GeomData::Point(p) => format!(r#"{{"type":"Point","coordinates":[{},{}]}}"#, p.x, p.y),
        GeomData::LineString(ps) => {
            format!(r#"{{"type":"LineString","coordinates":{}}}"#, coords(ps))
        }
        GeomData::MultiPoint(ps) => {
            format!(r#"{{"type":"MultiPoint","coordinates":{}}}"#, coords(ps))
        }
        GeomData::Polygon(rings) => {
            let rs: Vec<String> = rings.iter().map(|r| coords(r)).collect();
            format!(r#"{{"type":"Polygon","coordinates":[{}]}}"#, rs.join(","))
        }
        GeomData::MultiLineString(lines) => {
            let rs: Vec<String> = lines.iter().map(|r| coords(r)).collect();
            format!(r#"{{"type":"MultiLineString","coordinates":[{}]}}"#, rs.join(","))
        }
        GeomData::GeometryCollection(gs) => {
            let inner: Vec<String> = gs.iter().map(geometry_to_geojson).collect();
            format!(r#"{{"type":"GeometryCollection","geometries":[{}]}}"#, inner.join(","))
        }
    }
}

/// A FeatureCollection of trip trajectories (with vehicle/trip ids and
/// start timestamps as properties, the fields Kepler.gl animates on).
pub fn trips_geojson(data: &BerlinModData, limit: usize) -> String {
    let feats: Vec<String> = data
        .trips
        .iter()
        .take(limit)
        .map(|t| {
            format!(
                r#"{{"type":"Feature","properties":{{"vehicle":{},"trip":{},"start":"{}"}},"geometry":{}}}"#,
                t.vehicle_id,
                t.trip_id,
                t.trip.temp.start_timestamp(),
                geometry_to_geojson(&t.trip.trajectory())
            )
        })
        .collect();
    format!(r#"{{"type":"FeatureCollection","features":[{}]}}"#, feats.join(","))
}

/// A FeatureCollection of the administrative districts (Figure 4).
pub fn districts_geojson(data: &BerlinModData) -> String {
    let feats: Vec<String> = data
        .districts
        .iter()
        .map(|(name, g, pop)| {
            format!(
                r#"{{"type":"Feature","properties":{{"name":"{}","population_weight":{}}},"geometry":{}}}"#,
                name,
                pop,
                geometry_to_geojson(g)
            )
        })
        .collect();
    format!(r#"{{"type":"FeatureCollection","features":[{}]}}"#, feats.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::RoadNetwork;
    use crate::trips::ScaleFactor;

    #[test]
    fn geojson_is_well_formed() {
        let g = mduck_geo::wkt::parse_wkt("LINESTRING(0 0,1 1)").unwrap();
        let j = geometry_to_geojson(&g);
        assert_eq!(j, r#"{"type":"LineString","coordinates":[[0,0],[1,1]]}"#);

        let net = RoadNetwork::generate(42);
        let data = crate::dataset::BerlinModData::generate(&net, ScaleFactor(0.001), 42);
        let trips = trips_geojson(&data, 3);
        assert!(trips.starts_with(r#"{"type":"FeatureCollection""#));
        assert_eq!(trips.matches(r#""type":"Feature""#).count(), 3);
        let dist = districts_geojson(&data);
        assert_eq!(dist.matches("Polygon").count(), 12);
        assert!(dist.contains("Hoan Kiem"));
    }
}
