//! The 17 BerlinMOD range queries (§6.3), as SQL text that runs unchanged
//! on both engines. Q3, Q5, Q7, Q10 are transcribed from the paper's
//! listings; the rest follow the BerlinMOD benchmark's business questions.

/// (query id, business question, SQL).
pub fn benchmark_queries() -> Vec<(u32, &'static str, &'static str)> {
    vec![
        (
            1,
            "What are the models of the vehicles with license plate numbers from Licenses1?",
            "SELECT DISTINCT l.license, v.model
             FROM vehicles v, licenses1 l
             WHERE v.vehicleid = l.vehicleid
             ORDER BY l.license",
        ),
        (
            2,
            "How many vehicles exist that are passenger cars?",
            "SELECT count(*) FROM vehicles v WHERE v.vehicletype = 'passenger'",
        ),
        (
            3,
            "Where have the vehicles with licenses from Licenses1 been at each of the instants from Instants1?",
            "SELECT DISTINCT l.license, i.instantid, i.instant AS instant,
                    valueAtTimestamp(t.trip, i.instant)::GEOMETRY AS pos
             FROM trips t, licenses1 l, instants1 i
             WHERE t.vehicleid = l.vehicleid AND
                   t.trip::tstzspan @> i.instant
             ORDER BY l.license, i.instantid",
        ),
        (
            4,
            "Which license plate numbers belong to vehicles that have passed the points from Points1?",
            "SELECT DISTINCT p.pointid, v.license
             FROM trips t, vehicles v, points1 p
             WHERE t.vehicleid = v.vehicleid AND
                   t.trip && stbox(p.geom) AND
                   ST_Intersects(trajectory(t.trip), p.geom)
             ORDER BY p.pointid, v.license",
        ),
        (
            5,
            "What is the minimum distance between places, where a vehicle with a license from Licenses1 and a vehicle with a license from Licenses2 have been?",
            "WITH Temp1(license1, trajs) AS (
               SELECT l1.license, collect_gs(list(trajectory_gs(t1.trip)))
               FROM trips t1, licenses1 l1
               WHERE t1.vehicleid = l1.vehicleid
               GROUP BY l1.license ),
             Temp2(license2, trajs) AS (
               SELECT l2.license, collect_gs(list(trajectory_gs(t2.trip)))
               FROM trips t2, licenses2 l2
               WHERE t2.vehicleid = l2.vehicleid
               GROUP BY l2.license )
             SELECT license1, license2, distance_gs(t1.trajs, t2.trajs) AS mindist
             FROM Temp1 t1, Temp2 t2
             ORDER BY license1, license2",
        ),
        (
            6,
            "What are the pairs of trucks that have ever been as close as 10m or less to each other?",
            "SELECT DISTINCT t1.vehicleid AS truck1, t2.vehicleid AS truck2
             FROM trips t1, vehicles v1, trips t2, vehicles v2
             WHERE t1.vehicleid = v1.vehicleid AND t2.vehicleid = v2.vehicleid AND
                   t1.vehicleid < t2.vehicleid AND
                   v1.vehicletype = 'truck' AND v2.vehicletype = 'truck' AND
                   t1.trip && expandSpace(t2.trip::STBOX, 10.0) AND
                   eDwithin(t1.trip, t2.trip, 10.0)
             ORDER BY truck1, truck2",
        ),
        (
            7,
            "What are the license plate numbers of the passenger cars that have reached the points from Points1 first of all passenger cars during the complete observation period?",
            "WITH Timestamps AS (
               SELECT DISTINCT v.license, p.pointid, p.geom,
                      MIN(startTimestamp(atValues(t.trip, p.geom::WKB_BLOB))) AS instant
               FROM trips t, vehicles v, points1 p
               WHERE t.vehicleid = v.vehicleid AND
                     v.vehicletype = 'passenger' AND
                     t.trip && stbox(p.geom) AND
                     ST_Intersects(trajectory(t.trip), p.geom)
               GROUP BY v.license, p.pointid, p.geom )
             SELECT t1.license, t1.pointid, t1.instant
             FROM Timestamps t1
             WHERE t1.instant <= ALL (
               SELECT t2.instant
               FROM Timestamps t2
               WHERE t1.pointid = t2.pointid )
             ORDER BY t1.pointid, t1.license",
        ),
        (
            8,
            "What are the overall traveled distances of the vehicles with licenses from Licenses1 during the periods from Periods1?",
            "SELECT l.license, p.periodid, p.period,
                    sum(length(atTime(t.trip, p.period))) AS dist
             FROM trips t, licenses1 l, periods1 p
             WHERE t.vehicleid = l.vehicleid AND
                   t.trip::tstzspan && p.period
             GROUP BY l.license, p.periodid, p.period
             ORDER BY l.license, p.periodid",
        ),
        (
            9,
            "What is the longest distance that was traveled by a vehicle during each of the periods from Periods1?",
            "WITH Distances AS (
               SELECT p.periodid, t.vehicleid,
                      sum(length(atTime(t.trip, p.period))) AS dist
               FROM trips t, periods1 p
               WHERE t.trip::tstzspan && p.period
               GROUP BY p.periodid, t.vehicleid )
             SELECT d1.periodid, max(d1.dist) AS maxdist
             FROM Distances d1
             GROUP BY d1.periodid
             ORDER BY d1.periodid",
        ),
        (
            10,
            "When and where did the vehicles with license plate numbers from Licenses1 meet other vehicles (distance < 3 meters) and what are the latter licenses?",
            "WITH Temp AS (
               SELECT l1.license AS license1, t2.vehicleid AS car2id,
                      whenTrue(tDwithin(t1.trip, t2.trip, 3.0)) AS periods
               FROM trips t1, licenses1 l1, trips t2, vehicles v
               WHERE t1.vehicleid = l1.vehicleid AND
                     t2.vehicleid = v.vehicleid AND
                     t1.vehicleid <> t2.vehicleid AND
                     t2.trip && expandSpace(t1.trip::STBOX, 3.0))
             SELECT license1, car2id, periods
             FROM Temp
             WHERE periods IS NOT NULL
             ORDER BY license1, car2id",
        ),
        (
            11,
            "Which vehicles passed a point from Points1 at one of the instants from Instants1?",
            "SELECT p.pointid, i.instantid, v.license
             FROM trips t, vehicles v, points1 p, instants1 i
             WHERE t.vehicleid = v.vehicleid AND
                   t.trip::tstzspan @> i.instant AND
                   t.trip && stbox(p.geom) AND
                   ST_DWithin(valueAtTimestamp(t.trip, i.instant), p.geom, 25.0)
             ORDER BY p.pointid, i.instantid, v.license",
        ),
        (
            12,
            "Which vehicles met at a point from Points1 at an instant from Instants1?",
            "SELECT DISTINCT p.pointid, i.instantid,
                    v1.license AS license1, v2.license AS license2
             FROM trips t1, vehicles v1, trips t2, vehicles v2, points1 p, instants1 i
             WHERE t1.vehicleid = v1.vehicleid AND t2.vehicleid = v2.vehicleid AND
                   t1.vehicleid < t2.vehicleid AND
                   t1.trip::tstzspan @> i.instant AND
                   t2.trip::tstzspan @> i.instant AND
                   t1.trip && stbox(p.geom) AND t2.trip && stbox(p.geom) AND
                   ST_DWithin(valueAtTimestamp(t1.trip, i.instant), p.geom, 25.0) AND
                   ST_DWithin(valueAtTimestamp(t2.trip, i.instant), p.geom, 25.0)
             ORDER BY p.pointid, i.instantid, license1, license2",
        ),
        (
            13,
            "Which vehicles traveled within one of the regions from Regions1 during the periods from Periods1?",
            "SELECT DISTINCT r.regionid, p.periodid, v.license
             FROM trips t, vehicles v, regions1 r, periods1 p
             WHERE t.vehicleid = v.vehicleid AND
                   t.trip && stbox(r.geom) AND
                   t.trip::tstzspan && p.period AND
                   eIntersects(atTime(t.trip, p.period), r.geom)
             ORDER BY r.regionid, p.periodid, v.license",
        ),
        (
            14,
            "Which vehicles traveled within one of the regions from Regions1 at one of the instants from Instants1?",
            "SELECT DISTINCT r.regionid, i.instantid, v.license
             FROM trips t, vehicles v, regions1 r, instants1 i
             WHERE t.vehicleid = v.vehicleid AND
                   t.trip::tstzspan @> i.instant AND
                   t.trip && stbox(r.geom) AND
                   ST_Intersects(valueAtTimestamp(t.trip, i.instant), r.geom)
             ORDER BY r.regionid, i.instantid, v.license",
        ),
        (
            15,
            "Which vehicles passed a point from Points1 during a period from Periods1?",
            "SELECT DISTINCT p.pointid, pr.periodid, v.license
             FROM trips t, vehicles v, points1 p, periods1 pr
             WHERE t.vehicleid = v.vehicleid AND
                   t.trip && stbox(p.geom) AND
                   t.trip::tstzspan && pr.period AND
                   ST_Intersects(trajectory(atTime(t.trip, pr.period))::GEOMETRY, p.geom)
             ORDER BY p.pointid, pr.periodid, v.license",
        ),
        (
            16,
            "List the pairs of licenses from Licenses1 and Licenses2 where the corresponding vehicles were both within a region from Regions1 during a period from Periods1",
            "SELECT DISTINCT l1.license AS license1, l2.license AS license2,
                    r.regionid, p.periodid
             FROM trips t1, licenses1 l1, trips t2, licenses2 l2, regions1 r, periods1 p
             WHERE t1.vehicleid = l1.vehicleid AND t2.vehicleid = l2.vehicleid AND
                   l1.license < l2.license AND
                   t1.trip && stbox(r.geom) AND t2.trip && stbox(r.geom) AND
                   t1.trip::tstzspan && p.period AND t2.trip::tstzspan && p.period AND
                   eIntersects(atTime(t1.trip, p.period), r.geom) AND
                   eIntersects(atTime(t2.trip, p.period), r.geom)
             ORDER BY license1, license2, r.regionid, p.periodid",
        ),
        (
            17,
            "Which point(s) from Points1 have been visited by a maximum number of different vehicles?",
            "WITH PointCount AS (
               SELECT p.pointid, count(DISTINCT t.vehicleid) AS hits
               FROM trips t, points1 p
               WHERE t.trip && stbox(p.geom) AND
                     ST_Intersects(trajectory(t.trip), p.geom)
               GROUP BY p.pointid )
             SELECT pc.pointid, pc.hits
             FROM PointCount pc
             WHERE pc.hits >= ALL (SELECT hits FROM PointCount)
             ORDER BY pc.pointid",
        ),
    ]
}

/// The §6.2 use-case analytics (Figures 6–11), as SQL against the loaded
/// tables (`trips` plays the trajectories role; `hanoi` holds districts).
pub fn usecase_queries() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "all_trajectories",
            "SELECT t.vehicleid, t.tripid, ST_AsText(t.traj) AS traj FROM trips t ORDER BY t.tripid LIMIT 20",
        ),
        (
            "trip_crossing_most_districts",
            "WITH Crossings AS (
               SELECT t.tripid, count(*) AS n
               FROM trips t, hanoi h
               WHERE ST_Intersects(t.traj, h.geom)
               GROUP BY t.tripid )
             SELECT c.tripid, c.n FROM Crossings c
             WHERE c.n >= ALL (SELECT n FROM Crossings)
             ORDER BY c.tripid",
        ),
        (
            "trips_crossing_hai_ba_trung",
            "SELECT count(*)
             FROM trips t, hanoi h
             WHERE h.municipalityname = 'Hai Ba Trung' AND ST_Intersects(t.traj, h.geom)",
        ),
        (
            "distance_per_district",
            "SELECT h.municipalityname, round((sum(length(atGeometry(t.trip, h.geom))) / 1000), 3) AS total_km
             FROM trips t, hanoi h
             WHERE ST_Intersects(t.traj, h.geom)
             GROUP BY h.municipalityname
             ORDER BY total_km DESC",
        ),
        (
            "top6_districts_by_trips",
            "SELECT h.municipalityname, count(*) AS n
             FROM trips t, hanoi h
             WHERE ST_Intersects(t.traj, h.geom)
             GROUP BY h.municipalityname
             ORDER BY n DESC, h.municipalityname
             LIMIT 6",
        ),
        (
            "close_vehicle_pairs",
            "SELECT DISTINCT t1.vehicleid AS vehicleid1, t1.tripid AS tripid1,
                    t2.vehicleid AS vehicleid2, t2.tripid AS tripid2
             FROM (SELECT * FROM trips t1 LIMIT 100) t1,
                  (SELECT * FROM trips t2 LIMIT 100) t2
             WHERE t1.vehicleid < t2.vehicleid AND
                   eDwithin(t1.trip, t2.trip, 10.0)
             ORDER BY vehicleid1, vehicleid2
             LIMIT 50",
        ),
    ]
}
