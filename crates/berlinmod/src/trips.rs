//! BerlinMOD trip generation over the synthetic Hanoi network.
//!
//! Follows the BerlinMOD mobility model: each vehicle has a home and a
//! work node; weekdays produce a morning home→work and an evening
//! work→home commute, plus an optional evening leisure round trip. The
//! scale-factor model matches the paper's Tables 2–3:
//! `vehicles = round(2000·√SF)`, `days = round(28·√SF) + 2`.

use mduck_geo::point::Point;
use mduck_temporal::temporal::TGeomPoint;
use mduck_temporal::time::USECS_PER_SEC;
use mduck_temporal::{Date, TimestampTz};
use mduck_prng::StdRng;
use mduck_prng::{RngExt, SeedableRng};

use crate::network::RoadNetwork;

/// One generated trip.
#[derive(Debug, Clone)]
pub struct Trip {
    pub trip_id: i64,
    pub vehicle_id: i64,
    pub day: Date,
    pub seq_no: i64,
    pub source_node: usize,
    pub target_node: usize,
    pub trip: TGeomPoint,
}

/// One generated vehicle.
#[derive(Debug, Clone)]
pub struct Vehicle {
    pub vehicle_id: i64,
    pub license: String,
    pub vehicle_type: &'static str,
    pub model: &'static str,
    pub home: usize,
    pub work: usize,
}

/// The scale-factor model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleFactor(pub f64);

impl ScaleFactor {
    pub fn num_vehicles(self) -> usize {
        (2000.0 * self.0.sqrt()).round() as usize
    }

    pub fn num_days(self) -> usize {
        (28.0 * self.0.sqrt()).round() as usize + 2
    }
}

const MODELS: [&str; 8] = [
    "Honda Wave", "Yamaha Sirius", "Toyota Vios", "Honda SH", "Kia Morning", "Hyundai i10",
    "VinFast VF8", "Honda CR-V",
];

/// First simulated day (a Monday).
pub fn first_day() -> Date {
    Date::from_ymd(2025, 6, 2)
}

/// Generate vehicles and trips for a scale factor. Deterministic in
/// `seed`.
pub fn generate_trips(
    net: &RoadNetwork,
    sf: ScaleFactor,
    seed: u64,
) -> (Vec<Vehicle>, Vec<Trip>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let num_vehicles = sf.num_vehicles();
    let num_days = sf.num_days();
    let mut vehicles = Vec::with_capacity(num_vehicles);
    let mut trips = Vec::new();
    let mut trip_id = 0i64;
    for vid in 1..=num_vehicles as i64 {
        let home = net.sample_home(&mut rng);
        let mut work = net.sample_work(&mut rng);
        // Ensure a real commute.
        while work == home {
            work = net.sample_work(&mut rng);
        }
        let vehicle_type = if rng.random_range(0.0..1.0) < 0.9 { "passenger" } else { "truck" };
        let license = format!("29A-{:03}.{:02}", vid / 100 + 100, vid % 100);
        vehicles.push(Vehicle {
            vehicle_id: vid,
            license,
            vehicle_type,
            model: MODELS[rng.random_range(0..MODELS.len())],
            home,
            work,
        });
        for d in 0..num_days as i32 {
            let day = Date(first_day().0 + d);
            let mut seq = 0i64;
            let mut emit = |trips: &mut Vec<Trip>,
                            rng: &mut StdRng,
                            from: usize,
                            to: usize,
                            depart_h: f64| {
                if let Some(trip) = route_trip(net, rng, from, to, day, depart_h) {
                    trip_id += 1;
                    seq += 1;
                    trips.push(Trip {
                        trip_id,
                        vehicle_id: vid,
                        day,
                        seq_no: seq,
                        source_node: from,
                        target_node: to,
                        trip,
                    });
                }
            };
            // Morning commute (7:00–9:00) and evening return (16:30–18:30).
            let morning = rng.random_range(7.0..9.0);
            emit(&mut trips, &mut rng, home, work, morning);
            let evening = rng.random_range(16.5..18.5);
            emit(&mut trips, &mut rng, work, home, evening);
            // Evening leisure round trip with probability 0.45 → the
            // BerlinMOD ≈2.9 trips/vehicle/day average.
            if rng.random_range(0.0..1.0) < 0.45 {
                let leisure = rng.random_range(0..net.num_nodes());
                let out_h = rng.random_range(19.0..20.5);
                emit(&mut trips, &mut rng, home, leisure, out_h);
                let back_h = out_h + rng.random_range(1.0..2.0);
                emit(&mut trips, &mut rng, leisure, home, back_h);
            }
        }
    }
    (vehicles, trips)
}

/// Route one trip and synthesize its temporal point: a waypoint at each
/// path node with edge-speed-derived timestamps (±10% traffic noise).
fn route_trip(
    net: &RoadNetwork,
    rng: &mut StdRng,
    from: usize,
    to: usize,
    day: Date,
    depart_hour: f64,
) -> Option<TGeomPoint> {
    let path = net.shortest_path(from, to);
    if path.len() < 2 {
        return None;
    }
    let depart =
        TimestampTz(day.at_midnight().0 + (depart_hour * 3600.0 * USECS_PER_SEC as f64) as i64);
    let mut points: Vec<(Point, TimestampTz)> = Vec::with_capacity(path.len());
    let mut t = depart;
    points.push((net.nodes[path[0]].pos, t));
    for w in path.windows(2) {
        let edge = net.edge_between(w[0], w[1])?;
        let traffic = rng.random_range(0.75..1.1); // congestion slows travel
        let secs = edge.length_m / (edge.speed_mps * traffic);
        t = TimestampTz(t.0 + (secs * USECS_PER_SEC as f64).max(1.0) as i64);
        points.push((net.nodes[w[1]].pos, t));
    }
    TGeomPoint::linear_seq(points, crate::network::NETWORK_SRID).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_factor_matches_paper_tables() {
        // Table 3 (benchmark sizes).
        assert_eq!(ScaleFactor(0.001).num_vehicles(), 63);
        assert_eq!(ScaleFactor(0.002).num_vehicles(), 89);
        assert_eq!(ScaleFactor(0.005).num_vehicles(), 141);
        assert_eq!(ScaleFactor(0.01).num_vehicles(), 200);
        // Table 2 (dataset sizes).
        assert_eq!(ScaleFactor(0.01).num_days(), 5);
        assert_eq!(ScaleFactor(0.02).num_days(), 6);
        assert_eq!(ScaleFactor(0.05).num_days(), 8);
        assert_eq!(ScaleFactor(0.1).num_days(), 11);
        assert_eq!(ScaleFactor(0.02).num_vehicles(), 283);
        assert_eq!(ScaleFactor(0.05).num_vehicles(), 447);
        assert_eq!(ScaleFactor(0.1).num_vehicles(), 632);
    }

    #[test]
    fn trips_are_generated_and_plausible() {
        let net = RoadNetwork::generate(42);
        let (vehicles, trips) = generate_trips(&net, ScaleFactor(0.001), 42);
        assert_eq!(vehicles.len(), 63);
        // 63 vehicles × 3 days × ~2.9 trips ≈ 550.
        let per_vd = trips.len() as f64 / (63.0 * 3.0);
        assert!((2.2..=3.6).contains(&per_vd), "trips per vehicle-day: {per_vd}");
        for t in trips.iter().take(50) {
            assert!(t.trip.temp.num_instants() >= 2);
            assert!(t.trip.length() > 0.0);
            // Trips last between a minute and three hours.
            let dur = t.trip.temp.duration(true).approx_usecs() as f64 / 3.6e9;
            assert!((0.01..=3.0).contains(&dur), "duration {dur}h");
            // Average speed is physically plausible (< 70 km/h).
            let avg_speed =
                t.trip.length() / (t.trip.temp.duration(true).approx_usecs() as f64 / 1e6);
            assert!(avg_speed < 20.0, "avg speed {avg_speed} m/s");
        }
        // Determinism.
        let (_, trips2) = generate_trips(&net, ScaleFactor(0.001), 42);
        assert_eq!(trips.len(), trips2.len());
        assert_eq!(trips[0].trip, trips2[0].trip);
    }

    #[test]
    fn licenses_are_unique() {
        let net = RoadNetwork::generate(42);
        let (vehicles, _) = generate_trips(&net, ScaleFactor(0.001), 42);
        let mut licenses: Vec<&str> = vehicles.iter().map(|v| v.license.as_str()).collect();
        licenses.sort();
        licenses.dedup();
        assert_eq!(licenses.len(), vehicles.len());
    }
}
