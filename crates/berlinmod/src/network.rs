//! A synthetic "Hanoi-like" road network and administrative districts.
//!
//! Substitution for the OSM extract the paper feeds through osm2pgrouting
//! (no offline OSM data is available): a jittered grid with ring-radial
//! arterials, 12 districts named and population-weighted after Hanoi's
//! urban districts, and Dijkstra routing. Coordinates are metres in the
//! VN-2000 / UTM 48N frame (SRID 3405) around Hoan Kiem lake, so distances
//! and speeds are physically meaningful.

use mduck_geo::point::Point;
use mduck_geo::Geometry;
use mduck_prng::StdRng;
use mduck_prng::{RngExt, SeedableRng};

/// SRID of all network coordinates.
pub const NETWORK_SRID: i32 = 3405;

/// Network centre (approximately Hoan Kiem, VN-2000 / UTM 48N metres).
pub const CENTER: Point = Point { x: 585_000.0, y: 2_325_000.0 };

/// Grid spacing in metres.
const SPACING: f64 = 500.0;
/// Grid half-extent in cells (the network spans ±HALF cells around the
/// centre, i.e. a 20 km × 20 km city).
const HALF: i32 = 20;

/// A road-network node.
#[derive(Debug, Clone, Copy)]
pub struct Node {
    pub pos: Point,
    pub district: usize,
}

/// A directed edge with a free-flow speed.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    pub to: usize,
    pub length_m: f64,
    pub speed_mps: f64,
}

/// An administrative district (Figure 4's polygons).
#[derive(Debug, Clone)]
pub struct District {
    pub name: &'static str,
    pub polygon: Geometry,
    /// Relative residential weight (Hanoi's population skew).
    pub population_weight: f64,
    /// Relative employment weight (jobs concentrate in the core).
    pub work_weight: f64,
}

/// The road network: adjacency lists + district geometry.
pub struct RoadNetwork {
    pub nodes: Vec<Node>,
    pub adjacency: Vec<Vec<Edge>>,
    pub districts: Vec<District>,
}

/// Hanoi's 12 urban districts: (name, population weight, work weight).
/// Weights follow the real population skew (Hoang Mai and Dong Da are the
/// most populous; Hoan Kiem is the dense employment core).
const DISTRICTS: [(&str, f64, f64); 12] = [
    ("Ba Dinh", 0.8, 1.2),
    ("Hoan Kiem", 0.5, 2.0),
    ("Tay Ho", 0.55, 0.6),
    ("Long Bien", 1.0, 0.7),
    ("Cau Giay", 0.95, 1.3),
    ("Dong Da", 1.25, 1.1),
    ("Hai Ba Trung", 1.05, 1.0),
    ("Hoang Mai", 1.4, 0.6),
    ("Thanh Xuan", 1.0, 0.8),
    ("Ha Dong", 1.1, 0.5),
    ("Nam Tu Liem", 0.9, 0.9),
    ("Bac Tu Liem", 0.95, 0.5),
];

impl RoadNetwork {
    /// Deterministically generate the network.
    pub fn generate(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let districts = make_districts();
        let width = (2 * HALF + 1) as usize;
        let mut nodes = Vec::with_capacity(width * width);
        for gy in -HALF..=HALF {
            for gx in -HALF..=HALF {
                // Jitter streets so trajectories aren't axis-aligned.
                let jx: f64 = rng.random_range(-0.18..0.18) * SPACING;
                let jy: f64 = rng.random_range(-0.18..0.18) * SPACING;
                let pos = Point::new(
                    CENTER.x + gx as f64 * SPACING + jx,
                    CENTER.y + gy as f64 * SPACING + jy,
                );
                let district = district_at(&pos);
                nodes.push(Node { pos, district });
            }
        }
        let index = |gx: i32, gy: i32| -> usize {
            ((gy + HALF) as usize) * width + (gx + HALF) as usize
        };
        let mut adjacency: Vec<Vec<Edge>> = vec![Vec::new(); nodes.len()];
        for gy in -HALF..=HALF {
            for gx in -HALF..=HALF {
                let from = index(gx, gy);
                // Ring-radial arterials are faster than side streets; the
                // two main axes plus the middle ring get highway speeds.
                let arterial = gx == 0 || gy == 0 || gx.abs() == 10 || gy.abs() == 10;
                let base_speed = if arterial { 13.9 } else { 8.3 }; // 50 / 30 km/h
                for (dx, dy) in [(1i32, 0i32), (0, 1)] {
                    let (nx, ny) = (gx + dx, gy + dy);
                    if nx > HALF || ny > HALF {
                        continue;
                    }
                    // Sparse random street removals keep the graph
                    // non-trivial but connected (arterials always stay).
                    if !arterial && rng.random_range(0.0..1.0) < 0.08 {
                        continue;
                    }
                    let to = index(nx, ny);
                    let length = nodes[from].pos.distance(&nodes[to].pos);
                    let speed = base_speed * rng.random_range(0.85..1.15);
                    adjacency[from].push(Edge { to, length_m: length, speed_mps: speed });
                    adjacency[to].push(Edge { to: from, length_m: length, speed_mps: speed });
                }
            }
        }
        RoadNetwork { nodes, adjacency, districts }
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Sample a node weighted by district residential population.
    pub fn sample_home(&self, rng: &mut StdRng) -> usize {
        self.sample_weighted(rng, |d| d.population_weight)
    }

    /// Sample a node weighted by district employment.
    pub fn sample_work(&self, rng: &mut StdRng) -> usize {
        self.sample_weighted(rng, |d| d.work_weight)
    }

    fn sample_weighted(&self, rng: &mut StdRng, w: impl Fn(&District) -> f64) -> usize {
        let total: f64 = self.districts.iter().map(&w).sum();
        let mut pick = rng.random_range(0.0..total);
        let mut chosen = 0;
        for (i, d) in self.districts.iter().enumerate() {
            pick -= w(d);
            if pick <= 0.0 {
                chosen = i;
                break;
            }
        }
        // Rejection-sample a node in the chosen district.
        loop {
            let n = rng.random_range(0..self.nodes.len());
            if self.nodes[n].district == chosen {
                return n;
            }
        }
    }

    /// Dijkstra shortest path by travel time; returns the node sequence
    /// (empty when unreachable).
    pub fn shortest_path(&self, from: usize, to: usize) -> Vec<usize> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let n = self.nodes.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![usize::MAX; n];
        let mut heap: BinaryHeap<(Reverse<u64>, usize)> = BinaryHeap::new();
        dist[from] = 0.0;
        heap.push((Reverse(0), from));
        while let Some((Reverse(d_ms), u)) = heap.pop() {
            let d = d_ms as f64 / 1000.0;
            if d > dist[u] + 1e-9 {
                continue;
            }
            if u == to {
                break;
            }
            for e in &self.adjacency[u] {
                let nd = dist[u] + e.length_m / e.speed_mps;
                if nd + 1e-9 < dist[e.to] {
                    dist[e.to] = nd;
                    prev[e.to] = u;
                    heap.push((Reverse((nd * 1000.0) as u64), e.to));
                }
            }
        }
        if dist[to].is_infinite() {
            return Vec::new();
        }
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            cur = prev[cur];
            if cur == usize::MAX {
                return Vec::new();
            }
            path.push(cur);
        }
        path.reverse();
        path
    }

    /// The edge between two adjacent path nodes.
    pub fn edge_between(&self, a: usize, b: usize) -> Option<&Edge> {
        self.adjacency[a].iter().find(|e| e.to == b)
    }
}

/// Assign a grid cell to one of the 12 districts: a 4 × 3 tiling of the
/// city square (rough but deterministic; the polygons match).
/// District of a (jittered) position: the 4×3 rectangle grid cell that
/// contains it, clamped to the extent for perimeter nodes whose jitter
/// pushes them past the edge. Assigning from the actual position (rather
/// than the integer grid cell) keeps `Node::district` consistent with
/// `District::polygon`.
fn district_at(pos: &Point) -> usize {
    let size = (2 * HALF) as f64 * SPACING;
    let x0 = CENTER.x - size / 2.0;
    let y0 = CENTER.y - size / 2.0;
    let col = (((pos.x - x0) / (size / 4.0)).floor() as i32).clamp(0, 3) as usize;
    let row = (((pos.y - y0) / (size / 3.0)).floor() as i32).clamp(0, 2) as usize;
    row * 4 + col
}

fn make_districts() -> Vec<District> {
    let size = (2 * HALF) as f64 * SPACING;
    let x0 = CENTER.x - size / 2.0;
    let y0 = CENTER.y - size / 2.0;
    let dw = size / 4.0;
    let dh = size / 3.0;
    DISTRICTS
        .iter()
        .enumerate()
        .map(|(i, (name, pop, work))| {
            let col = (i % 4) as f64;
            let row = (i / 4) as f64;
            let (xa, ya) = (x0 + col * dw, y0 + row * dh);
            let polygon = Geometry::polygon(vec![vec![
                Point::new(xa, ya),
                Point::new(xa + dw, ya),
                Point::new(xa + dw, ya + dh),
                Point::new(xa, ya + dh),
                Point::new(xa, ya),
            ]])
            .expect("district rectangle is a valid polygon")
            .with_srid(NETWORK_SRID);
            District {
                name,
                polygon,
                population_weight: *pop,
                work_weight: *work,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_is_deterministic() {
        let a = RoadNetwork::generate(42);
        let b = RoadNetwork::generate(42);
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.nodes[100].pos, b.nodes[100].pos);
        let c = RoadNetwork::generate(7);
        assert_ne!(a.nodes[100].pos, c.nodes[100].pos);
    }

    #[test]
    fn all_nodes_reachable_via_arterials() {
        let net = RoadNetwork::generate(42);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..25 {
            let a = rng.random_range(0..net.num_nodes());
            let b = rng.random_range(0..net.num_nodes());
            let path = net.shortest_path(a, b);
            assert!(!path.is_empty(), "no path {a} → {b}");
            assert_eq!(path[0], a);
            assert_eq!(*path.last().unwrap(), b);
            // Consecutive nodes are connected.
            for w in path.windows(2) {
                assert!(net.edge_between(w[0], w[1]).is_some());
            }
        }
    }

    #[test]
    fn districts_cover_all_nodes() {
        let net = RoadNetwork::generate(42);
        for node in &net.nodes {
            assert!(node.district < 12);
        }
        // Weighted sampling respects districts.
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let h = net.sample_home(&mut rng);
            assert!(h < net.num_nodes());
        }
    }

    #[test]
    fn district_polygons_contain_their_nodes() {
        use mduck_geo::algorithms::geometry_covers_point;
        let net = RoadNetwork::generate(42);
        let mut hits = 0usize;
        for node in net.nodes.iter().step_by(37) {
            if geometry_covers_point(&net.districts[node.district].polygon, node.pos) {
                hits += 1;
            }
        }
        // Jitter can push border nodes slightly outside their rectangle;
        // the overwhelming majority must match.
        let total = net.nodes.iter().step_by(37).count();
        assert!(hits * 10 >= total * 9, "{hits}/{total}");
    }

    #[test]
    fn shortest_path_prefers_fast_roads() {
        let net = RoadNetwork::generate(42);
        // A long diagonal route should use more than the bare minimum of
        // hops (it detours onto arterials).
        let a = 0;
        let b = net.num_nodes() - 1;
        let path = net.shortest_path(a, b);
        assert!(path.len() >= 2 * HALF as usize);
    }
}
