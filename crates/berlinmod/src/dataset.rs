//! Dataset assembly and loading: the BerlinMOD tables (Vehicles, Licenses,
//! Trips, Points, Regions, Instants, Periods), their 10-row benchmark
//! samples (Licenses1/2, Instants1, Periods1, Points1, Regions1), and the
//! `hanoi` district table — loaded identically into both engines.

use mduck_geo::point::Point;
use mduck_geo::{wkb, Geometry};
use mduck_sql::{SqlResult, Value};
use mduck_temporal::span::TstzSpan;
use mduck_temporal::TimestampTz;
use mobilityduck::{MdTGeomPoint, MdTstzSpan};
use mduck_prng::StdRng;
use mduck_prng::{RngExt, SeedableRng};

use crate::network::{RoadNetwork, NETWORK_SRID};
use crate::trips::{first_day, generate_trips, ScaleFactor, Trip, Vehicle};

/// A fully generated BerlinMOD-Hanoi dataset, engine-agnostic.
pub struct BerlinModData {
    pub sf: ScaleFactor,
    pub vehicles: Vec<Vehicle>,
    pub trips: Vec<Trip>,
    pub points: Vec<Geometry>,
    pub regions: Vec<Geometry>,
    pub instants: Vec<TimestampTz>,
    pub periods: Vec<TstzSpan>,
    pub districts: Vec<(String, Geometry, f64)>,
}

impl BerlinModData {
    /// Generate the dataset for a scale factor (deterministic).
    pub fn generate(net: &RoadNetwork, sf: ScaleFactor, seed: u64) -> Self {
        let (vehicles, trips) = generate_trips(net, sf, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0001);

        // Query points: sampled from actual trip waypoints so point-based
        // queries (Q4, Q7, Q11) have hits.
        let mut points = Vec::with_capacity(100);
        for _ in 0..100 {
            let t = &trips[rng.random_range(0..trips.len())];
            let instants = t.trip.temp.instants();
            let i = rng.random_range(0..instants.len());
            points.push(
                Geometry::from_point(instants[i].value).with_srid(NETWORK_SRID),
            );
        }

        // Query regions: random 1–3 km squares within the city.
        let mut regions = Vec::with_capacity(100);
        for _ in 0..100 {
            let t = &trips[rng.random_range(0..trips.len())];
            let c = t.trip.temp.start_value();
            let half = rng.random_range(500.0..1500.0);
            regions.push(
                Geometry::polygon(vec![vec![
                    Point::new(c.x - half, c.y - half),
                    Point::new(c.x + half, c.y - half),
                    Point::new(c.x + half, c.y + half),
                    Point::new(c.x - half, c.y + half),
                    Point::new(c.x - half, c.y - half),
                ]])
                .expect("square region")
                .with_srid(NETWORK_SRID),
            );
        }

        // Query instants: uniform over the simulated window.
        let start = first_day().at_midnight();
        let days = sf.num_days() as i64;
        let span_usecs = days * 86_400_000_000;
        let instants: Vec<TimestampTz> = (0..100)
            .map(|_| TimestampTz(start.0 + rng.random_range(0..span_usecs)))
            .collect();

        // Query periods: 2–24-hour windows.
        let periods: Vec<TstzSpan> = (0..100)
            .map(|_| {
                let lo = TimestampTz(start.0 + rng.random_range(0..span_usecs));
                let len = rng.random_range(2..24) * 3_600_000_000i64;
                TstzSpan::new(lo, TimestampTz(lo.0 + len), true, true)
                    .expect("positive period")
            })
            .collect();

        let districts = net
            .districts
            .iter()
            .map(|d| (d.name.to_string(), d.polygon.clone(), d.population_weight))
            .collect();

        BerlinModData { sf, vehicles, trips, points, regions, instants, periods, districts }
    }

    /// Approximate dataset size in bytes (Table 2's Size column): the
    /// in-memory footprint of the trip observations.
    pub fn approx_size_bytes(&self) -> usize {
        let instants: usize = self.trips.iter().map(|t| t.trip.temp.num_instants()).sum();
        // One observation = point (16) + timestamp (8) + row bookkeeping,
        // matching BerlinMOD's CSV-ish accounting.
        instants * 72 + self.trips.len() * 64
    }

    pub fn total_trip_points(&self) -> usize {
        self.trips.iter().map(|t| t.trip.temp.num_instants()).sum()
    }

    /// The DDL both engines run.
    pub fn ddl() -> &'static str {
        "CREATE TABLE vehicles(vehicleid INTEGER, license VARCHAR, vehicletype VARCHAR, model VARCHAR);
         CREATE TABLE licenses(licenseid INTEGER, license VARCHAR, vehicleid INTEGER);
         CREATE TABLE trips(tripid INTEGER, vehicleid INTEGER, day DATE, seqno INTEGER, trip TGEOMPOINT, traj WKB_BLOB);
         CREATE TABLE points(pointid INTEGER, geom WKB_BLOB);
         CREATE TABLE regions(regionid INTEGER, geom WKB_BLOB);
         CREATE TABLE instants(instantid INTEGER, instant TIMESTAMPTZ);
         CREATE TABLE periods(periodid INTEGER, period TSTZSPAN);
         CREATE TABLE licenses1(licenseid INTEGER, license VARCHAR, vehicleid INTEGER);
         CREATE TABLE licenses2(licenseid INTEGER, license VARCHAR, vehicleid INTEGER);
         CREATE TABLE instants1(instantid INTEGER, instant TIMESTAMPTZ);
         CREATE TABLE periods1(periodid INTEGER, period TSTZSPAN);
         CREATE TABLE points1(pointid INTEGER, geom WKB_BLOB);
         CREATE TABLE regions1(regionid INTEGER, geom WKB_BLOB);
         CREATE TABLE hanoi(municipalityname VARCHAR, geom WKB_BLOB, population DOUBLE);"
    }

    /// The CREATE INDEX script of the "MobilityDB with indexes" scenario.
    pub fn index_ddl() -> &'static str {
        "CREATE INDEX trips_trip_gist ON trips USING GIST(trip);
         CREATE INDEX trips_vehicle_btree ON trips USING BTREE(vehicleid);
         CREATE INDEX vehicles_id_btree ON vehicles USING BTREE(vehicleid);
         CREATE INDEX licenses_vehicle_btree ON licenses USING BTREE(vehicleid);"
    }

    /// All tables as (name, rows) pairs, in insertion order.
    pub fn table_rows(&self) -> Vec<(&'static str, Vec<Vec<Value>>)> {
        let vehicles: Vec<Vec<Value>> = self
            .vehicles
            .iter()
            .map(|v| {
                vec![
                    Value::Int(v.vehicle_id),
                    Value::text(&v.license),
                    Value::text(v.vehicle_type),
                    Value::text(v.model),
                ]
            })
            .collect();
        let licenses: Vec<Vec<Value>> = self
            .vehicles
            .iter()
            .map(|v| {
                vec![Value::Int(v.vehicle_id), Value::text(&v.license), Value::Int(v.vehicle_id)]
            })
            .collect();
        let trips: Vec<Vec<Value>> = self
            .trips
            .iter()
            .map(|t| {
                let traj = t.trip.trajectory();
                vec![
                    Value::Int(t.trip_id),
                    Value::Int(t.vehicle_id),
                    Value::Date(t.day.0),
                    Value::Int(t.seq_no),
                    MdTGeomPoint(t.trip.clone()).into_value(),
                    Value::blob(wkb::to_wkb(&traj)),
                ]
            })
            .collect();
        let points: Vec<Vec<Value>> = self
            .points
            .iter()
            .enumerate()
            .map(|(i, g)| vec![Value::Int(i as i64 + 1), Value::blob(wkb::to_wkb(g))])
            .collect();
        let regions: Vec<Vec<Value>> = self
            .regions
            .iter()
            .enumerate()
            .map(|(i, g)| vec![Value::Int(i as i64 + 1), Value::blob(wkb::to_wkb(g))])
            .collect();
        let instants: Vec<Vec<Value>> = self
            .instants
            .iter()
            .enumerate()
            .map(|(i, t)| vec![Value::Int(i as i64 + 1), Value::Timestamp(t.0)])
            .collect();
        let periods: Vec<Vec<Value>> = self
            .periods
            .iter()
            .enumerate()
            .map(|(i, p)| vec![Value::Int(i as i64 + 1), MdTstzSpan(*p).into_value()])
            .collect();
        let hanoi: Vec<Vec<Value>> = self
            .districts
            .iter()
            .map(|(name, g, pop)| {
                vec![
                    Value::text(name),
                    Value::blob(wkb::to_wkb(g)),
                    Value::Float(*pop * 600_000.0),
                ]
            })
            .collect();
        // 10-row samples (deterministic prefix picks, as the paper's
        // benchmark "extracted samples").
        let licenses1: Vec<Vec<Value>> = licenses.iter().take(10).cloned().collect();
        let licenses2: Vec<Vec<Value>> =
            licenses.iter().skip(10).take(10).cloned().collect();
        let instants1: Vec<Vec<Value>> = instants.iter().take(10).cloned().collect();
        let periods1: Vec<Vec<Value>> = periods.iter().take(10).cloned().collect();
        let points1: Vec<Vec<Value>> = points.iter().take(10).cloned().collect();
        let regions1: Vec<Vec<Value>> = regions.iter().take(10).cloned().collect();
        vec![
            ("vehicles", vehicles),
            ("licenses", licenses),
            ("trips", trips),
            ("points", points),
            ("regions", regions),
            ("instants", instants),
            ("periods", periods),
            ("licenses1", licenses1),
            ("licenses2", licenses2),
            ("instants1", instants1),
            ("periods1", periods1),
            ("points1", points1),
            ("regions1", regions1),
            ("hanoi", hanoi),
        ]
    }

    /// Load into a quackdb (MobilityDuck) instance.
    pub fn load_into_quack(&self, db: &quackdb::Database) -> SqlResult<()> {
        for stmt in Self::ddl().split(';') {
            let stmt = stmt.trim();
            if !stmt.is_empty() {
                db.execute(stmt)?;
            }
        }
        for (name, rows) in self.table_rows() {
            // The engine's bulk commit path: atomic, WAL-logged when a
            // WAL is attached, so loaded datasets are as durable as any
            // INSERT statement.
            db.insert_rows(name, &rows)?;
        }
        Ok(())
    }

    /// Load into a rowdb (MobilityDB-baseline) instance; `with_indexes`
    /// reproduces the paper's indexed scenario.
    pub fn load_into_row(&self, db: &mduck_rowdb::RowDatabase, with_indexes: bool) -> SqlResult<()> {
        for stmt in Self::ddl().split(';') {
            let stmt = stmt.trim();
            if !stmt.is_empty() {
                db.execute(stmt)?;
            }
        }
        for (name, rows) in self.table_rows() {
            db.insert_rows(name, rows)?;
        }
        if with_indexes {
            for stmt in Self::index_ddl().split(';') {
                let stmt = stmt.trim();
                if !stmt.is_empty() {
                    db.execute(stmt)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (RoadNetwork, BerlinModData) {
        let net = RoadNetwork::generate(42);
        let data = BerlinModData::generate(&net, ScaleFactor(0.001), 42);
        (net, data)
    }

    #[test]
    fn dataset_shapes() {
        let (_, data) = small();
        assert_eq!(data.vehicles.len(), 63);
        assert_eq!(data.points.len(), 100);
        assert_eq!(data.regions.len(), 100);
        assert_eq!(data.instants.len(), 100);
        assert_eq!(data.periods.len(), 100);
        assert_eq!(data.districts.len(), 12);
        assert!(data.approx_size_bytes() > 0);
    }

    #[test]
    fn loads_into_both_engines() {
        let (_, data) = small();
        let vdb = quackdb::Database::new();
        mobilityduck::load(&vdb);
        data.load_into_quack(&vdb).unwrap();
        let rdb = mduck_rowdb::RowDatabase::new();
        mobilityduck::load_row(&rdb);
        data.load_into_row(&rdb, true).unwrap();

        for (table, expect) in [
            ("vehicles", data.vehicles.len()),
            ("trips", data.trips.len()),
            ("licenses1", 10),
            ("points", 100),
            ("hanoi", 12),
        ] {
            let q = format!("SELECT count(*) FROM {table}");
            assert_eq!(
                vdb.execute(&q).unwrap().rows[0][0].to_string(),
                expect.to_string(),
                "quackdb {table}"
            );
            assert_eq!(
                rdb.execute(&q).unwrap().rows[0][0].to_string(),
                expect.to_string(),
                "rowdb {table}"
            );
        }
    }
}
