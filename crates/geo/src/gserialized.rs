//! A compact native binary encoding standing in for PostGIS `GSERIALIZED`.
//!
//! The paper's §6.3 Query 5 optimization replaces WKB round-trips with
//! functions that keep geometries in MEOS's native serialized form
//! (`trajectory_gs`, `collect_gs`, `distance_gs`). This module provides that
//! native form: a header (magic, version, SRID, kind, cached bounding box)
//! followed by raw coordinate data. The cached box is what makes the `_gs`
//! path cheap for predicates — deserialization can read the box without
//! touching the coordinates.

use crate::error::{GeoError, GeoResult};
use crate::geometry::{GeomData, Geometry};
use crate::point::{Point, Rect};

const MAGIC: u8 = 0xD7;
const VERSION: u8 = 1;

/// Encode to the native format.
pub fn to_native(g: &Geometry) -> Vec<u8> {
    let mut out = Vec::with_capacity(48 + g.num_points() * 16);
    out.push(MAGIC);
    out.push(VERSION);
    out.push(kind_code(g));
    out.push(0); // reserved / flags
    out.extend_from_slice(&g.srid.to_le_bytes());
    let rect = g.bounding_rect().unwrap_or(Rect::new(0.0, 0.0, 0.0, 0.0));
    for v in [rect.xmin, rect.ymin, rect.xmax, rect.ymax] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    write_data(&mut out, &g.data);
    out
}

/// Decode from the native format.
pub fn from_native(bytes: &[u8]) -> GeoResult<Geometry> {
    let mut r = NativeReader { bytes, pos: 0 };
    r.expect_header()?;
    let kind = r.bytes[2];
    r.pos = 4;
    let srid = i32::from_le_bytes(r.take_arr()?);
    r.pos = 8 + 32; // skip header + cached box
    let data = r.read_data(kind)?;
    if r.pos != bytes.len() {
        return Err(GeoError::ParseNative("trailing bytes".into()));
    }
    Ok(Geometry { srid, data })
}

/// Read just the cached bounding box (plus SRID) without decoding
/// coordinates — the fast path used by index construction.
pub fn peek_bbox(bytes: &[u8]) -> GeoResult<(i32, Rect)> {
    if bytes.len() < 40 || bytes[0] != MAGIC || bytes[1] != VERSION {
        return Err(GeoError::ParseNative("bad header".into()));
    }
    // Length was checked above; read through the fallible reader anyway
    // so there is no unchecked slicing left on this path.
    let mut r = NativeReader { bytes, pos: 4 };
    let srid = i32::from_le_bytes(r.take_arr()?);
    let mut c = [0.0f64; 4];
    for v in &mut c {
        *v = r.f64()?;
    }
    Ok((srid, Rect { xmin: c[0], ymin: c[1], xmax: c[2], ymax: c[3] }))
}

/// True when `bytes` look like the native encoding (vs WKB, whose first byte
/// is 0 or 1).
pub fn is_native(bytes: &[u8]) -> bool {
    bytes.len() >= 40 && bytes[0] == MAGIC && bytes[1] == VERSION
}

fn kind_code(g: &Geometry) -> u8 {
    match &g.data {
        GeomData::Point(_) => 1,
        GeomData::LineString(_) => 2,
        GeomData::Polygon(_) => 3,
        GeomData::MultiPoint(_) => 4,
        GeomData::MultiLineString(_) => 5,
        GeomData::GeometryCollection(_) => 7,
    }
}

fn write_points(out: &mut Vec<u8>, ps: &[Point]) {
    out.extend_from_slice(&(ps.len() as u32).to_le_bytes());
    for p in ps {
        out.extend_from_slice(&p.x.to_le_bytes());
        out.extend_from_slice(&p.y.to_le_bytes());
    }
}

fn write_rings(out: &mut Vec<u8>, rings: &[Vec<Point>]) {
    out.extend_from_slice(&(rings.len() as u32).to_le_bytes());
    for r in rings {
        write_points(out, r);
    }
}

fn write_data(out: &mut Vec<u8>, data: &GeomData) {
    match data {
        GeomData::Point(p) => {
            out.extend_from_slice(&p.x.to_le_bytes());
            out.extend_from_slice(&p.y.to_le_bytes());
        }
        GeomData::LineString(ps) | GeomData::MultiPoint(ps) => write_points(out, ps),
        GeomData::Polygon(rings) | GeomData::MultiLineString(rings) => write_rings(out, rings),
        GeomData::GeometryCollection(gs) => {
            out.extend_from_slice(&(gs.len() as u32).to_le_bytes());
            for g in gs {
                out.push(kind_code(g));
                out.extend_from_slice(&g.srid.to_le_bytes());
                write_data(out, &g.data);
            }
        }
    }
}

struct NativeReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> NativeReader<'a> {
    fn expect_header(&self) -> GeoResult<()> {
        if self.bytes.len() < 40 {
            return Err(GeoError::ParseNative("too short".into()));
        }
        if self.bytes[0] != MAGIC {
            return Err(GeoError::ParseNative("bad magic".into()));
        }
        if self.bytes[1] != VERSION {
            return Err(GeoError::ParseNative(format!("unknown version {}", self.bytes[1])));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> GeoResult<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(GeoError::ParseNative("unexpected end of input".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn take_arr<const N: usize>(&mut self) -> GeoResult<[u8; N]> {
        let s = self.take(N)?;
        let mut a = [0u8; N];
        a.copy_from_slice(s);
        Ok(a)
    }

    fn u32(&mut self) -> GeoResult<u32> {
        Ok(u32::from_le_bytes(self.take_arr()?))
    }

    fn f64(&mut self) -> GeoResult<f64> {
        Ok(f64::from_le_bytes(self.take_arr()?))
    }

    fn point(&mut self) -> GeoResult<Point> {
        Ok(Point { x: self.f64()?, y: self.f64()? })
    }

    fn points(&mut self) -> GeoResult<Vec<Point>> {
        let n = self.u32()? as usize;
        if n > self.bytes.len() / 16 + 1 {
            return Err(GeoError::ParseNative(format!("implausible point count {n}")));
        }
        (0..n).map(|_| self.point()).collect()
    }

    fn rings(&mut self) -> GeoResult<Vec<Vec<Point>>> {
        let n = self.u32()? as usize;
        if n > self.bytes.len() / 4 + 1 {
            return Err(GeoError::ParseNative(format!("implausible ring count {n}")));
        }
        (0..n).map(|_| self.points()).collect()
    }

    fn read_data(&mut self, kind: u8) -> GeoResult<GeomData> {
        Ok(match kind {
            1 => GeomData::Point(self.point()?),
            2 => GeomData::LineString(self.points()?),
            3 => GeomData::Polygon(self.rings()?),
            4 => GeomData::MultiPoint(self.points()?),
            5 => GeomData::MultiLineString(self.rings()?),
            7 => {
                let n = self.u32()? as usize;
                if n > self.bytes.len() {
                    return Err(GeoError::ParseNative("implausible member count".into()));
                }
                let mut gs = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = self.take(1)?[0];
                    let srid = i32::from_le_bytes(self.take_arr()?);
                    let data = self.read_data(k)?;
                    gs.push(Geometry { srid, data });
                }
                GeomData::GeometryCollection(gs)
            }
            other => return Err(GeoError::ParseNative(format!("unknown kind {other}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wkt::parse_wkt;

    fn roundtrip(wkt: &str) {
        let g = parse_wkt(wkt).unwrap();
        let bytes = to_native(&g);
        let back = from_native(&bytes).unwrap();
        assert_eq!(g, back, "roundtrip for {wkt}");
    }

    #[test]
    fn native_roundtrips() {
        roundtrip("POINT(1 2)");
        roundtrip("SRID=3405;POINT(2.340088 49.400250)");
        roundtrip("LINESTRING(0 0,1 1,2 0)");
        roundtrip("POLYGON((0 0,4 0,4 4,0 4,0 0))");
        roundtrip("MULTIPOINT(1 1,2 2)");
        roundtrip("MULTILINESTRING((0 0,1 1),(2 2,3 3))");
        roundtrip("GEOMETRYCOLLECTION(POINT(1 2),LINESTRING(0 0,1 1))");
    }

    #[test]
    fn peek_bbox_reads_cached_box() {
        let g = parse_wkt("SRID=7;LINESTRING(1 2, 5 -3)").unwrap();
        let bytes = to_native(&g);
        let (srid, rect) = peek_bbox(&bytes).unwrap();
        assert_eq!(srid, 7);
        assert_eq!(rect, Rect::new(1.0, -3.0, 5.0, 2.0));
    }

    #[test]
    fn native_detection() {
        let g = parse_wkt("POINT(1 2)").unwrap();
        assert!(is_native(&to_native(&g)));
        assert!(!is_native(&crate::wkb::to_wkb(&g)));
    }

    #[test]
    fn corrupt_native_rejected() {
        let g = parse_wkt("LINESTRING(0 0,1 1)").unwrap();
        let mut b = to_native(&g);
        assert!(from_native(&b[..b.len() - 1]).is_err());
        b[0] = 0;
        assert!(from_native(&b).is_err());
    }
}
