//! WKT / EWKT parsing and printing.
//!
//! Accepts the PostGIS-flavoured grammar the paper's sample queries use:
//! an optional `SRID=<n>;` prefix followed by a geometry tag and coordinate
//! lists, case-insensitively (`Point(1 1)` and `POINT(1 1)` both parse).

use crate::error::{GeoError, GeoResult};
use crate::geometry::{GeomData, Geometry};
use crate::point::Point;
use crate::SRID_UNKNOWN;

/// Parse WKT or EWKT (leading `SRID=<n>;` allowed).
pub fn parse_wkt(input: &str) -> GeoResult<Geometry> {
    let mut p = WktParser::new(input);
    let g = p.parse_geometry(SRID_UNKNOWN)?;
    p.skip_ws();
    if !p.at_end() {
        // Truncate on a char boundary: the trailing garbage is exactly
        // where multi-byte junk lives, and the error path must not panic.
        let rest = p.rest();
        let mut end = rest.len().min(16);
        while !rest.is_char_boundary(end) {
            end -= 1;
        }
        return Err(GeoError::ParseWkt(format!(
            "trailing input at offset {}: {:?}",
            p.pos,
            &rest[..end]
        )));
    }
    Ok(g)
}

/// Format as WKT (no SRID prefix). `decimals = None` prints shortest
/// round-trip representations; `Some(n)` rounds to `n` decimal digits.
pub fn to_wkt(g: &Geometry, decimals: Option<usize>) -> String {
    let mut s = String::with_capacity(32);
    write_geom(&mut s, g, decimals);
    s
}

/// Format as EWKT: `SRID=<n>;<wkt>` when the SRID is known, plain WKT
/// otherwise.
pub fn to_ewkt(g: &Geometry, decimals: Option<usize>) -> String {
    if g.srid != SRID_UNKNOWN {
        format!("SRID={};{}", g.srid, to_wkt(g, decimals))
    } else {
        to_wkt(g, decimals)
    }
}

/// Print one coordinate with the requested precision, trimming trailing
/// zeros the way PostGIS does.
pub fn fmt_coord(v: f64, decimals: Option<usize>) -> String {
    match decimals {
        None => {
            if v == v.trunc() && v.abs() < 1e15 {
                format!("{}", v as i64)
            } else {
                format!("{v}")
            }
        }
        Some(d) => {
            let s = format!("{v:.d$}", d = d);
            if s.contains('.') {
                let t = s.trim_end_matches('0').trim_end_matches('.');
                // Avoid "-0" after trimming.
                if t == "-0" { "0".to_string() } else { t.to_string() }
            } else {
                s
            }
        }
    }
}

fn write_pt(out: &mut String, p: &Point, decimals: Option<usize>) {
    out.push_str(&fmt_coord(p.x, decimals));
    out.push(' ');
    out.push_str(&fmt_coord(p.y, decimals));
}

fn write_pts(out: &mut String, ps: &[Point], decimals: Option<usize>) {
    out.push('(');
    for (i, p) in ps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_pt(out, p, decimals);
    }
    out.push(')');
}

fn write_geom(out: &mut String, g: &Geometry, decimals: Option<usize>) {
    match &g.data {
        GeomData::Point(p) => {
            out.push_str("POINT(");
            write_pt(out, p, decimals);
            out.push(')');
        }
        GeomData::LineString(ps) => {
            out.push_str("LINESTRING");
            write_pts(out, ps, decimals);
        }
        GeomData::MultiPoint(ps) => {
            out.push_str("MULTIPOINT");
            write_pts(out, ps, decimals);
        }
        GeomData::Polygon(rings) => {
            out.push_str("POLYGON(");
            for (i, r) in rings.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_pts(out, r, decimals);
            }
            out.push(')');
        }
        GeomData::MultiLineString(lines) => {
            out.push_str("MULTILINESTRING(");
            for (i, r) in lines.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_pts(out, r, decimals);
            }
            out.push(')');
        }
        GeomData::GeometryCollection(gs) => {
            if gs.is_empty() {
                out.push_str("GEOMETRYCOLLECTION EMPTY");
            } else {
                out.push_str("GEOMETRYCOLLECTION(");
                for (i, child) in gs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_geom(out, child, decimals);
                }
                out.push(')');
            }
        }
    }
}

struct WktParser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> WktParser<'a> {
    fn new(src: &'a str) -> Self {
        WktParser { src, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.rest().chars().next() {
            if c.is_whitespace() {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, c: char) -> GeoResult<()> {
        self.skip_ws();
        if self.rest().starts_with(c) {
            self.pos += c.len_utf8();
            Ok(())
        } else {
            Err(GeoError::ParseWkt(format!(
                "expected {c:?} at offset {}, found {:?}",
                self.pos,
                self.rest().chars().next()
            )))
        }
    }

    fn try_eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.rest().starts_with(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> String {
        self.skip_ws();
        let start = self.pos;
        while let Some(c) = self.rest().chars().next() {
            if c.is_ascii_alphabetic() {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.src[start..self.pos].to_ascii_uppercase()
    }

    fn number(&mut self) -> GeoResult<f64> {
        self.skip_ws();
        let start = self.pos;
        let bytes = self.src.as_bytes();
        if self.pos < bytes.len() && (bytes[self.pos] == b'-' || bytes[self.pos] == b'+') {
            self.pos += 1;
        }
        while self.pos < bytes.len()
            && (bytes[self.pos].is_ascii_digit()
                || bytes[self.pos] == b'.'
                || bytes[self.pos] == b'e'
                || bytes[self.pos] == b'E'
                || ((bytes[self.pos] == b'-' || bytes[self.pos] == b'+')
                    && self.pos > start
                    && (bytes[self.pos - 1] == b'e' || bytes[self.pos - 1] == b'E')))
        {
            self.pos += 1;
        }
        self.src[start..self.pos]
            .parse::<f64>()
            .map_err(|_| GeoError::ParseWkt(format!("bad number at offset {start}")))
    }

    fn point_coords(&mut self) -> GeoResult<Point> {
        let x = self.number()?;
        let y = self.number()?;
        Ok(Point::new(x, y))
    }

    fn point_list(&mut self) -> GeoResult<Vec<Point>> {
        self.eat('(')?;
        let mut pts = vec![self.point_coords()?];
        while self.try_eat(',') {
            pts.push(self.point_coords()?);
        }
        self.eat(')')?;
        Ok(pts)
    }

    fn ring_list(&mut self) -> GeoResult<Vec<Vec<Point>>> {
        self.eat('(')?;
        let mut rings = vec![self.point_list()?];
        while self.try_eat(',') {
            rings.push(self.point_list()?);
        }
        self.eat(')')?;
        Ok(rings)
    }

    fn parse_geometry(&mut self, inherited_srid: i32) -> GeoResult<Geometry> {
        self.skip_ws();
        let mut srid = inherited_srid;
        // Checked slice: byte 5 of arbitrary input may fall inside a
        // multi-byte character, where `rest[..5]` would panic.
        if self.rest().get(..5).is_some_and(|p| p.eq_ignore_ascii_case("srid=")) {
            self.pos += 5;
            let v = self.number()?;
            // `v as i32` would silently saturate out-of-range SRIDs.
            if !(v.is_finite() && v.fract() == 0.0 && (f64::from(i32::MIN)..=f64::from(i32::MAX)).contains(&v)) {
                return Err(GeoError::ParseWkt(format!("SRID {v} out of range")));
            }
            srid = v as i32;
            self.eat(';')?;
        }
        let tag = self.ident();
        let g = match tag.as_str() {
            "POINT" => {
                self.eat('(')?;
                let p = self.point_coords()?;
                self.eat(')')?;
                Geometry { srid, data: GeomData::Point(p) }
            }
            "LINESTRING" => {
                let pts = self.point_list()?;
                if pts.len() < 2 {
                    return Err(GeoError::ParseWkt("linestring needs ≥2 points".into()));
                }
                Geometry { srid, data: GeomData::LineString(pts) }
            }
            "MULTIPOINT" => {
                // Accept both MULTIPOINT(1 1, 2 2) and MULTIPOINT((1 1),(2 2)).
                self.eat('(')?;
                self.skip_ws();
                let nested = self.rest().starts_with('(');
                let mut pts = Vec::new();
                loop {
                    if nested {
                        self.eat('(')?;
                        pts.push(self.point_coords()?);
                        self.eat(')')?;
                    } else {
                        pts.push(self.point_coords()?);
                    }
                    if !self.try_eat(',') {
                        break;
                    }
                }
                self.eat(')')?;
                Geometry { srid, data: GeomData::MultiPoint(pts) }
            }
            "POLYGON" => {
                let rings = self.ring_list()?;
                Geometry::polygon(rings)?.with_srid(srid)
            }
            "MULTILINESTRING" => {
                let lines = self.ring_list()?;
                Geometry { srid, data: GeomData::MultiLineString(lines) }
            }
            "GEOMETRYCOLLECTION" => {
                self.skip_ws();
                if self.rest().to_ascii_uppercase().starts_with("EMPTY") {
                    self.pos += 5;
                    Geometry { srid, data: GeomData::GeometryCollection(vec![]) }
                } else {
                    self.eat('(')?;
                    let mut gs = vec![self.parse_geometry(srid)?];
                    while self.try_eat(',') {
                        gs.push(self.parse_geometry(srid)?);
                    }
                    self.eat(')')?;
                    Geometry { srid, data: GeomData::GeometryCollection(gs) }
                }
            }
            other => {
                return Err(GeoError::ParseWkt(format!("unknown geometry tag {other:?}")));
            }
        };
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_point_roundtrip() {
        let g = parse_wkt("Point(1 1)").unwrap();
        assert_eq!(g.as_point().unwrap(), Point::new(1.0, 1.0));
        assert_eq!(to_wkt(&g, None), "POINT(1 1)");
    }

    #[test]
    fn parse_ewkt_srid() {
        let g = parse_wkt("SRID=4326;Point(2.340088 49.400250)").unwrap();
        assert_eq!(g.srid, 4326);
        assert_eq!(to_ewkt(&g, None), "SRID=4326;POINT(2.340088 49.40025)");
    }

    #[test]
    fn parse_linestring() {
        let g = parse_wkt("LINESTRING(0 0, 1 1, 2 0)").unwrap();
        assert_eq!(g.num_points(), 3);
        assert_eq!(to_wkt(&g, None), "LINESTRING(0 0,1 1,2 0)");
    }

    #[test]
    fn parse_polygon_with_hole() {
        let g = parse_wkt(
            "POLYGON((0 0, 10 0, 10 10, 0 10, 0 0),(4 4, 6 4, 6 6, 4 6, 4 4))",
        )
        .unwrap();
        match &g.data {
            GeomData::Polygon(rings) => assert_eq!(rings.len(), 2),
            _ => panic!(),
        }
    }

    #[test]
    fn parse_multipoint_both_syntaxes() {
        let a = parse_wkt("MULTIPOINT(1 1, 2 2)").unwrap();
        let b = parse_wkt("MULTIPOINT((1 1),(2 2))").unwrap();
        assert_eq!(a.data, b.data);
    }

    #[test]
    fn parse_collection() {
        let g = parse_wkt("GEOMETRYCOLLECTION(POINT(1 2),LINESTRING(0 0,1 1))").unwrap();
        assert_eq!(g.flatten().len(), 2);
        assert_eq!(
            to_wkt(&g, None),
            "GEOMETRYCOLLECTION(POINT(1 2),LINESTRING(0 0,1 1))"
        );
        assert_eq!(to_wkt(&Geometry::collection(vec![]), None), "GEOMETRYCOLLECTION EMPTY");
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_wkt("POINT(1 1) x").is_err());
        assert!(parse_wkt("CIRCLE(1 1)").is_err());
        assert!(parse_wkt("POINT(1)").is_err());
    }

    #[test]
    fn fmt_coord_precision() {
        assert_eq!(fmt_coord(502773.429981234, Some(6)), "502773.429981");
        assert_eq!(fmt_coord(1.5, None), "1.5");
        assert_eq!(fmt_coord(3.0, None), "3");
        assert_eq!(fmt_coord(2.5000, Some(6)), "2.5");
        assert_eq!(fmt_coord(-0.0000001, Some(3)), "0");
    }

    #[test]
    fn scientific_notation_accepted() {
        let g = parse_wkt("POINT(1e3 -2.5E-2)").unwrap();
        assert_eq!(g.as_point().unwrap(), Point::new(1000.0, -0.025));
    }
}
