//! WKB / EWKB binary encoding.
//!
//! This is the `WKB_BLOB` interchange format of the paper's proxy layer to
//! the DuckDB Spatial extension (§6.2, §7): little-endian OGC WKB, with the
//! PostGIS EWKB SRID flag (`0x2000_0000`) when an SRID is present.

use crate::error::{GeoError, GeoResult};
use crate::geometry::{GeomData, Geometry, GeometryKind};
use crate::point::Point;
use crate::SRID_UNKNOWN;

const EWKB_SRID_FLAG: u32 = 0x2000_0000;

/// Encode as (E)WKB, little-endian. Emits the SRID header only on the
/// outermost geometry, as PostGIS does.
pub fn to_wkb(g: &Geometry) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + g.num_points() * 16);
    write_geom(&mut out, g, true);
    out
}

/// Decode (E)WKB, accepting both byte orders.
pub fn from_wkb(bytes: &[u8]) -> GeoResult<Geometry> {
    let mut r = Reader { bytes, pos: 0 };
    let g = read_geom(&mut r, SRID_UNKNOWN)?;
    Ok(g)
}

fn write_geom(out: &mut Vec<u8>, g: &Geometry, outermost: bool) {
    out.push(1); // little-endian
    let mut code = g.kind().wkb_code();
    let with_srid = outermost && g.srid != SRID_UNKNOWN;
    if with_srid {
        code |= EWKB_SRID_FLAG;
    }
    out.extend_from_slice(&code.to_le_bytes());
    if with_srid {
        out.extend_from_slice(&(g.srid as u32).to_le_bytes());
    }
    match &g.data {
        GeomData::Point(p) => write_point(out, p),
        GeomData::LineString(ps) => write_points(out, ps),
        GeomData::Polygon(rings) => {
            out.extend_from_slice(&(rings.len() as u32).to_le_bytes());
            for r in rings {
                write_points(out, r);
            }
        }
        GeomData::MultiPoint(ps) => {
            out.extend_from_slice(&(ps.len() as u32).to_le_bytes());
            for p in ps {
                // Each member is a full WKB point.
                let child = Geometry::from_point(*p);
                write_geom(out, &child, false);
            }
        }
        GeomData::MultiLineString(lines) => {
            out.extend_from_slice(&(lines.len() as u32).to_le_bytes());
            for l in lines {
                out.push(1);
                out.extend_from_slice(&GeometryKind::LineString.wkb_code().to_le_bytes());
                write_points(out, l);
            }
        }
        GeomData::GeometryCollection(gs) => {
            out.extend_from_slice(&(gs.len() as u32).to_le_bytes());
            for child in gs {
                write_geom(out, child, false);
            }
        }
    }
}

fn write_point(out: &mut Vec<u8>, p: &Point) {
    out.extend_from_slice(&p.x.to_le_bytes());
    out.extend_from_slice(&p.y.to_le_bytes());
}

fn write_points(out: &mut Vec<u8>, ps: &[Point]) {
    out.extend_from_slice(&(ps.len() as u32).to_le_bytes());
    for p in ps {
        write_point(out, p);
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> GeoResult<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(GeoError::ParseWkb(format!(
                "unexpected end of input at byte {} (need {n} more)",
                self.pos
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> GeoResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn take_arr<const N: usize>(&mut self) -> GeoResult<[u8; N]> {
        let s = self.take(N)?;
        let mut a = [0u8; N];
        a.copy_from_slice(s);
        Ok(a)
    }

    fn u32(&mut self, le: bool) -> GeoResult<u32> {
        let b: [u8; 4] = self.take_arr()?;
        Ok(if le { u32::from_le_bytes(b) } else { u32::from_be_bytes(b) })
    }

    fn f64(&mut self, le: bool) -> GeoResult<f64> {
        let b: [u8; 8] = self.take_arr()?;
        Ok(if le { f64::from_le_bytes(b) } else { f64::from_be_bytes(b) })
    }

    fn point(&mut self, le: bool) -> GeoResult<Point> {
        let x = self.f64(le)?;
        let y = self.f64(le)?;
        Ok(Point { x, y })
    }

    fn points(&mut self, le: bool) -> GeoResult<Vec<Point>> {
        let n = self.u32(le)? as usize;
        if n > self.bytes.len() / 16 + 1 {
            return Err(GeoError::ParseWkb(format!("implausible point count {n}")));
        }
        let mut ps = Vec::with_capacity(n);
        for _ in 0..n {
            ps.push(self.point(le)?);
        }
        Ok(ps)
    }
}

fn read_geom(r: &mut Reader<'_>, inherited_srid: i32) -> GeoResult<Geometry> {
    let le = match r.u8()? {
        0 => false,
        1 => true,
        other => return Err(GeoError::ParseWkb(format!("bad byte order marker {other}"))),
    };
    let raw_code = r.u32(le)?;
    let mut srid = inherited_srid;
    if raw_code & EWKB_SRID_FLAG != 0 {
        srid = r.u32(le)? as i32;
    }
    // Mask PostGIS Z/M/SRID flags; reject Z/M payloads (we are 2-D only).
    if raw_code & 0x8000_0000 != 0 || raw_code & 0x4000_0000 != 0 {
        return Err(GeoError::ParseWkb("Z/M dimensions are not supported".into()));
    }
    let code = raw_code & 0x0FFF_FFFF;
    let data = match code {
        1 => GeomData::Point(r.point(le)?),
        2 => GeomData::LineString(r.points(le)?),
        3 => {
            let n = r.u32(le)? as usize;
            let mut rings = Vec::with_capacity(n);
            for _ in 0..n {
                rings.push(r.points(le)?);
            }
            GeomData::Polygon(rings)
        }
        4 => {
            let n = r.u32(le)? as usize;
            let mut ps = Vec::with_capacity(n);
            for _ in 0..n {
                let child = read_geom(r, srid)?;
                match child.data {
                    GeomData::Point(p) => ps.push(p),
                    _ => return Err(GeoError::ParseWkb("multipoint member not a point".into())),
                }
            }
            GeomData::MultiPoint(ps)
        }
        5 => {
            let n = r.u32(le)? as usize;
            let mut lines = Vec::with_capacity(n);
            for _ in 0..n {
                let child = read_geom(r, srid)?;
                match child.data {
                    GeomData::LineString(ps) => lines.push(ps),
                    _ => {
                        return Err(GeoError::ParseWkb(
                            "multilinestring member not a linestring".into(),
                        ))
                    }
                }
            }
            GeomData::MultiLineString(lines)
        }
        7 => {
            let n = r.u32(le)? as usize;
            let mut gs = Vec::with_capacity(n);
            for _ in 0..n {
                gs.push(read_geom(r, srid)?);
            }
            GeomData::GeometryCollection(gs)
        }
        other => return Err(GeoError::ParseWkb(format!("unknown WKB type code {other}"))),
    };
    Ok(Geometry { srid, data })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wkt::parse_wkt;

    fn roundtrip(wkt: &str) {
        let g = parse_wkt(wkt).unwrap();
        let bytes = to_wkb(&g);
        let back = from_wkb(&bytes).unwrap();
        assert_eq!(g.data, back.data, "payload roundtrip for {wkt}");
        assert_eq!(g.srid, back.srid, "srid roundtrip for {wkt}");
    }

    #[test]
    fn wkb_roundtrips() {
        roundtrip("POINT(1 2)");
        roundtrip("SRID=4326;POINT(2.340088 49.400250)");
        roundtrip("LINESTRING(0 0,1 1,2 0)");
        roundtrip("POLYGON((0 0,4 0,4 4,0 4,0 0),(1 1,2 1,2 2,1 2,1 1))");
        roundtrip("MULTIPOINT(1 1,2 2)");
        roundtrip("MULTILINESTRING((0 0,1 1),(2 2,3 3))");
        roundtrip("GEOMETRYCOLLECTION(POINT(1 2),LINESTRING(0 0,1 1))");
    }

    #[test]
    fn wkb_point_layout_is_standard() {
        // Canonical little-endian WKB for POINT(1 2): 01 01000000 then two doubles.
        let g = parse_wkt("POINT(1 2)").unwrap();
        let b = to_wkb(&g);
        assert_eq!(b.len(), 21);
        assert_eq!(&b[..5], &[1, 1, 0, 0, 0]);
        assert_eq!(f64::from_le_bytes(b[5..13].try_into().unwrap()), 1.0);
        assert_eq!(f64::from_le_bytes(b[13..21].try_into().unwrap()), 2.0);
    }

    #[test]
    fn truncated_input_rejected() {
        let g = parse_wkt("LINESTRING(0 0,1 1)").unwrap();
        let b = to_wkb(&g);
        for cut in [0, 1, 5, 9, b.len() - 1] {
            assert!(from_wkb(&b[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn big_endian_accepted() {
        // Hand-built big-endian WKB for POINT(1 2).
        let mut b = vec![0u8];
        b.extend_from_slice(&1u32.to_be_bytes());
        b.extend_from_slice(&1f64.to_be_bytes());
        b.extend_from_slice(&2f64.to_be_bytes());
        let g = from_wkb(&b).unwrap();
        assert_eq!(g.as_point().unwrap(), Point::new(1.0, 2.0));
    }

    #[test]
    fn zm_flags_rejected() {
        let mut b = vec![1u8];
        b.extend_from_slice(&(1u32 | 0x8000_0000).to_le_bytes());
        b.extend_from_slice(&1f64.to_le_bytes());
        b.extend_from_slice(&2f64.to_le_bytes());
        assert!(from_wkb(&b).is_err());
    }
}
