//! The 2-D point / vector type used throughout the workspace.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A 2-D point (also used as a free vector where convenient).
///
/// Coordinates are `f64`; equality is exact bitwise-value equality, which is
/// what the temporal algebra needs to detect repeated instants. Use
/// [`Point::close_to`] for tolerance-based comparisons in tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Create a point; panics in debug builds if a coordinate is NaN.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        debug_assert!(!x.is_nan() && !y.is_nan(), "NaN coordinate");
        Point { x, y }
    }

    /// The origin, `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        (*self - *other).norm()
    }

    /// Squared Euclidean distance (avoids the sqrt in hot loops).
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let d = *self - *other;
        d.dot(d)
    }

    /// Vector dot product.
    #[inline]
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z-component of the 3-D cross product (signed parallelogram area).
    #[inline]
    pub fn cross(self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean norm when treated as a vector.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Linear interpolation: `self + t * (other - self)`.
    #[inline]
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point::new(
            self.x + t * (other.x - self.x),
            self.y + t * (other.y - self.y),
        )
    }

    /// True when both coordinate deltas are within `eps`.
    #[inline]
    pub fn close_to(&self, other: &Point, eps: f64) -> bool {
        (self.x - other.x).abs() <= eps && (self.y - other.y).abs() <= eps
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// An axis-aligned 2-D rectangle, the building block for geometry bounding
/// boxes and (with a time span) for `stbox`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    pub xmin: f64,
    pub ymin: f64,
    pub xmax: f64,
    pub ymax: f64,
}

impl Rect {
    /// Rectangle from two corner values; normalizes min/max ordering.
    pub fn new(x1: f64, y1: f64, x2: f64, y2: f64) -> Self {
        Rect {
            xmin: x1.min(x2),
            ymin: y1.min(y2),
            xmax: x1.max(x2),
            ymax: y1.max(y2),
        }
    }

    /// Degenerate rectangle covering a single point.
    pub fn from_point(p: Point) -> Self {
        Rect { xmin: p.x, ymin: p.y, xmax: p.x, ymax: p.y }
    }

    /// Smallest rectangle containing both operands.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            xmin: self.xmin.min(other.xmin),
            ymin: self.ymin.min(other.ymin),
            xmax: self.xmax.max(other.xmax),
            ymax: self.ymax.max(other.ymax),
        }
    }

    /// Grow to include a point.
    pub fn expand_to(&mut self, p: Point) {
        self.xmin = self.xmin.min(p.x);
        self.ymin = self.ymin.min(p.y);
        self.xmax = self.xmax.max(p.x);
        self.ymax = self.ymax.max(p.y);
    }

    /// Grow every side outward by `d` (negative shrinks).
    pub fn expand_by(&self, d: f64) -> Rect {
        Rect {
            xmin: self.xmin - d,
            ymin: self.ymin - d,
            xmax: self.xmax + d,
            ymax: self.ymax + d,
        }
    }

    /// Closed-interval overlap test.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.xmin <= other.xmax
            && other.xmin <= self.xmax
            && self.ymin <= other.ymax
            && other.ymin <= self.ymax
    }

    /// True when `other` lies entirely inside `self` (closed).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.xmin <= other.xmin
            && self.xmax >= other.xmax
            && self.ymin <= other.ymin
            && self.ymax >= other.ymax
    }

    /// Point membership (closed).
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.xmin && p.x <= self.xmax && p.y >= self.ymin && p.y <= self.ymax
    }

    /// Width × height.
    pub fn area(&self) -> f64 {
        (self.xmax - self.xmin) * (self.ymax - self.ymin)
    }

    /// Center point.
    pub fn center(&self) -> Point {
        Point::new((self.xmin + self.xmax) * 0.5, (self.ymin + self.ymax) * 0.5)
    }

    /// Minimum distance between two rectangles (0 when they intersect).
    pub fn distance(&self, other: &Rect) -> f64 {
        let dx = (other.xmin - self.xmax).max(self.xmin - other.xmax).max(0.0);
        let dy = (other.ymin - self.ymax).max(self.ymin - other.ymax).max(0.0);
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!((b - a).norm(), 5.0);
        assert_eq!(a + b, Point::new(5.0, 8.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(a.cross(b), 1.0 * 6.0 - 2.0 * 4.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -10.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), Point::new(5.0, -5.0));
    }

    #[test]
    fn rect_normalizes_and_tests_overlap() {
        let r = Rect::new(5.0, 5.0, 1.0, 1.0);
        assert_eq!(r.xmin, 1.0);
        assert_eq!(r.ymax, 5.0);
        assert!(r.intersects(&Rect::new(4.0, 4.0, 9.0, 9.0)));
        assert!(!r.intersects(&Rect::new(6.0, 6.0, 9.0, 9.0)));
        // Touching edges count as intersecting (closed intervals).
        assert!(r.intersects(&Rect::new(5.0, 5.0, 9.0, 9.0)));
    }

    #[test]
    fn rect_contains_and_distance() {
        let r = Rect::new(0.0, 0.0, 4.0, 4.0);
        assert!(r.contains_rect(&Rect::new(1.0, 1.0, 2.0, 2.0)));
        assert!(!r.contains_rect(&Rect::new(1.0, 1.0, 5.0, 2.0)));
        assert!(r.contains_point(&Point::new(4.0, 0.0)));
        assert_eq!(r.distance(&Rect::new(7.0, 0.0, 8.0, 1.0)), 3.0);
        assert_eq!(r.distance(&Rect::new(2.0, 2.0, 3.0, 3.0)), 0.0);
        let d = r.distance(&Rect::new(7.0, 8.0, 9.0, 9.0));
        assert!((d - 5.0).abs() < 1e-12); // 3-4-5 triangle
    }

    #[test]
    fn rect_union_expand() {
        let mut r = Rect::from_point(Point::new(1.0, 1.0));
        r.expand_to(Point::new(-1.0, 3.0));
        assert_eq!(r, Rect::new(-1.0, 1.0, 1.0, 3.0));
        let u = r.union(&Rect::new(0.0, 0.0, 5.0, 0.5));
        assert_eq!(u, Rect::new(-1.0, 0.0, 5.0, 3.0));
        assert_eq!(r.expand_by(1.0), Rect::new(-2.0, 0.0, 2.0, 4.0));
    }
}
