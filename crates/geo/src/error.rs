//! Error type shared by every geometry operation.

use std::fmt;

/// Errors produced by parsing, encoding, or operating on geometries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeoError {
    /// WKT/EWKT text could not be parsed; carries a human-readable reason.
    ParseWkt(String),
    /// WKB/EWKB bytes could not be decoded.
    ParseWkb(String),
    /// Native (GSERIALIZED-like) bytes could not be decoded.
    ParseNative(String),
    /// An operation received a geometry kind it does not support.
    UnsupportedGeometry(String),
    /// An SRID transform between the given pair is not available.
    UnknownTransform { from: i32, to: i32 },
    /// Operands carry different SRIDs.
    SridMismatch { left: i32, right: i32 },
    /// A constructor was handed invalid coordinates (NaN, too few points, ...).
    InvalidGeometry(String),
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::ParseWkt(m) => write!(f, "invalid WKT: {m}"),
            GeoError::ParseWkb(m) => write!(f, "invalid WKB: {m}"),
            GeoError::ParseNative(m) => write!(f, "invalid native geometry encoding: {m}"),
            GeoError::UnsupportedGeometry(m) => write!(f, "unsupported geometry: {m}"),
            GeoError::UnknownTransform { from, to } => {
                write!(f, "no transform registered from SRID {from} to SRID {to}")
            }
            GeoError::SridMismatch { left, right } => {
                write!(f, "operands have different SRIDs: {left} vs {right}")
            }
            GeoError::InvalidGeometry(m) => write!(f, "invalid geometry: {m}"),
        }
    }
}

impl std::error::Error for GeoError {}

/// Convenience alias used across the crate.
pub type GeoResult<T> = Result<T, GeoError>;
