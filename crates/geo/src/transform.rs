//! Planar SRID transforms (the `transform()` function of §3.5).
//!
//! Instead of linking PROJ we implement the projections the paper and the
//! BerlinMOD-Hanoi workload actually touch:
//!
//! * EPSG:4326 ↔ EPSG:3857 — exact spherical web-Mercator formulas,
//! * EPSG:4326 ↔ EPSG:3812 (Belgian Lambert 2008) — the full ellipsoidal
//!   Lambert Conformal Conic (2SP, EPSG method 9802) on GRS80, which
//!   reproduces the paper's §3.5 example output to sub-metre accuracy,
//! * EPSG:4326 ↔ EPSG:3405 (VN-2000 / UTM 48N, the Hanoi CRS) — a
//!   spherical transverse-Mercator approximation (documented substitution:
//!   deterministic and invertible, adequate for synthetic benchmark data).
//!
//! Any pair of supported SRIDs is routed through 4326.

use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

use crate::error::{GeoError, GeoResult};
use crate::geometry::Geometry;
use crate::point::Point;
use crate::{SRID_LAMBERT_2008, SRID_VN2000, SRID_WEB_MERCATOR, SRID_WGS84};

const WGS84_A: f64 = 6_378_137.0;

/// Transform a geometry to a target SRID. Returns the input unchanged when
/// the SRIDs already match.
pub fn transform(g: &Geometry, to_srid: i32) -> GeoResult<Geometry> {
    if g.srid == to_srid {
        return Ok(g.clone());
    }
    let from = g.srid;
    let to_wgs: fn(Point) -> Point = inverse_of(from)?;
    let from_wgs: fn(Point) -> Point = forward_of(to_srid)?;
    Ok(g.map_points(&|p| from_wgs(to_wgs(p))).with_srid(to_srid))
}

/// True when both directions of the transform are available.
pub fn is_supported(from: i32, to: i32) -> bool {
    from == to || (inverse_of(from).is_ok() && forward_of(to).is_ok())
}

fn forward_of(srid: i32) -> GeoResult<fn(Point) -> Point> {
    match srid {
        SRID_WGS84 => Ok(identity),
        SRID_WEB_MERCATOR => Ok(wgs_to_mercator),
        SRID_LAMBERT_2008 => Ok(wgs_to_lambert2008),
        SRID_VN2000 => Ok(wgs_to_vn2000),
        other => Err(GeoError::UnknownTransform { from: SRID_WGS84, to: other }),
    }
}

fn inverse_of(srid: i32) -> GeoResult<fn(Point) -> Point> {
    match srid {
        SRID_WGS84 => Ok(identity),
        SRID_WEB_MERCATOR => Ok(mercator_to_wgs),
        SRID_LAMBERT_2008 => Ok(lambert2008_to_wgs),
        SRID_VN2000 => Ok(vn2000_to_wgs),
        other => Err(GeoError::UnknownTransform { from: other, to: SRID_WGS84 }),
    }
}

fn identity(p: Point) -> Point {
    p
}

// ---------------------------------------------------------------- 3857

fn wgs_to_mercator(p: Point) -> Point {
    let x = WGS84_A * p.x.to_radians();
    let lat = p.y.to_radians().clamp(-1.484_421_5, 1.484_421_5); // ±85.06°
    let y = WGS84_A * (FRAC_PI_4 + lat / 2.0).tan().ln();
    Point::new(x, y)
}

fn mercator_to_wgs(p: Point) -> Point {
    let lon = (p.x / WGS84_A).to_degrees();
    let lat = (2.0 * (p.y / WGS84_A).exp().atan() - FRAC_PI_2).to_degrees();
    Point::new(lon, lat)
}

// ---------------------------------------------------------------- 3812
// Lambert Conformal Conic, 2 standard parallels, GRS80 (EPSG 9802).

struct Lcc {
    e: f64,
    n: f64,
    af: f64, // a * F
    rho0: f64,
    lon0: f64,
    x0: f64,
    y0: f64,
}

fn lcc_belgium_2008() -> Lcc {
    // GRS80
    let a = 6_378_137.0;
    let inv_f: f64 = 298.257_222_101;
    let f: f64 = 1.0 / inv_f;
    let e2 = f * (2.0 - f);
    let e = e2.sqrt();

    let lat1 = 49.833_333_333_333_336_f64.to_radians();
    let lat2 = 51.166_666_666_666_664_f64.to_radians();
    let lat0 = 50.797_815_f64.to_radians();
    let lon0 = 4.359_215_833_333_333_f64.to_radians();
    let x0 = 649_328.0;
    let y0 = 665_262.0;

    let m = |phi: f64| phi.cos() / (1.0 - e2 * phi.sin().powi(2)).sqrt();
    let t = |phi: f64| {
        (FRAC_PI_4 - phi / 2.0).tan()
            / ((1.0 - e * phi.sin()) / (1.0 + e * phi.sin())).powf(e / 2.0)
    };
    let (m1, m2) = (m(lat1), m(lat2));
    let (t1, t2) = (t(lat1), t(lat2));
    let t0 = t(lat0);
    let n = (m1.ln() - m2.ln()) / (t1.ln() - t2.ln());
    let big_f = m1 / (n * t1.powf(n));
    let af = a * big_f;
    let rho0 = af * t0.powf(n);
    Lcc { e, n, af, rho0, lon0, x0, y0 }
}

fn wgs_to_lambert2008(p: Point) -> Point {
    let c = lcc_belgium_2008();
    let phi = p.y.to_radians();
    let lam = p.x.to_radians();
    let t = (FRAC_PI_4 - phi / 2.0).tan()
        / ((1.0 - c.e * phi.sin()) / (1.0 + c.e * phi.sin())).powf(c.e / 2.0);
    let rho = c.af * t.powf(c.n);
    let theta = c.n * (lam - c.lon0);
    Point::new(c.x0 + rho * theta.sin(), c.y0 + c.rho0 - rho * theta.cos())
}

fn lambert2008_to_wgs(p: Point) -> Point {
    let c = lcc_belgium_2008();
    let dx = p.x - c.x0;
    let dy = c.rho0 - (p.y - c.y0);
    let rho = (dx * dx + dy * dy).sqrt() * c.n.signum();
    let theta = dx.atan2(dy);
    let t = (rho / c.af).powf(1.0 / c.n);
    // Iterate for latitude.
    let mut phi = FRAC_PI_2 - 2.0 * t.atan();
    for _ in 0..8 {
        let es = c.e * phi.sin();
        phi = FRAC_PI_2 - 2.0 * (t * ((1.0 - es) / (1.0 + es)).powf(c.e / 2.0)).atan();
    }
    let lam = theta / c.n + c.lon0;
    Point::new(lam.to_degrees(), phi.to_degrees())
}

// ---------------------------------------------------------------- 3405
// VN-2000 / UTM zone 48N, spherical transverse Mercator approximation.

const VN_LON0: f64 = 105.0;
const VN_K0: f64 = 0.9996;
const VN_X0: f64 = 500_000.0;

fn wgs_to_vn2000(p: Point) -> Point {
    let lam = (p.x - VN_LON0).to_radians();
    let phi = p.y.to_radians();
    let b = phi.cos() * lam.sin();
    let x = VN_X0 + VN_K0 * WGS84_A * 0.5 * ((1.0 + b) / (1.0 - b)).ln();
    let y = VN_K0 * WGS84_A * ((phi.tan() / lam.cos()).atan());
    Point::new(x, y)
}

fn vn2000_to_wgs(p: Point) -> Point {
    let x = (p.x - VN_X0) / (VN_K0 * WGS84_A);
    let y = p.y / (VN_K0 * WGS84_A);
    let d = x.sinh();
    let lam = d.atan2(y.cos());
    let phi = (y.sin() / (d * d + y.cos() * y.cos()).sqrt()).atan();
    Point::new(lam.to_degrees() + VN_LON0, phi.to_degrees())
}

// Keep PI referenced for readers comparing against textbook formulas.
#[allow(dead_code)]
const _FULL_TURN: f64 = 2.0 * PI;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wkt::parse_wkt;

    #[test]
    fn mercator_roundtrip() {
        let p = Point::new(105.85, 21.03); // Hanoi
        let m = wgs_to_mercator(p);
        let back = mercator_to_wgs(m);
        assert!(back.close_to(&p, 1e-9));
        // Known value: lon 180 → a*pi.
        let e = wgs_to_mercator(Point::new(180.0, 0.0));
        assert!((e.x - WGS84_A * PI).abs() < 1e-6);
        assert!(e.y.abs() < 1e-6);
    }

    #[test]
    fn lambert2008_matches_paper_example() {
        // §3.5: SRID=4326;Point(2.340088 49.400250) → SRID=3812;
        // POINT(502773.429981 511805.120402)
        let p = wgs_to_lambert2008(Point::new(2.340088, 49.400250));
        assert!((p.x - 502_773.429_981).abs() < 1.0, "easting {}", p.x);
        assert!((p.y - 511_805.120_402).abs() < 1.0, "northing {}", p.y);

        // Second point of the example.
        let q = wgs_to_lambert2008(Point::new(6.575317, 51.553167));
        assert!((q.x - 803_028.908_265).abs() < 1.0, "easting {}", q.x);
        assert!((q.y - 751_590.742_629).abs() < 1.0, "northing {}", q.y);
    }

    #[test]
    fn lambert2008_roundtrip() {
        for (lon, lat) in [(4.35, 50.85), (2.34, 49.40), (6.57, 51.55)] {
            let p = Point::new(lon, lat);
            let back = lambert2008_to_wgs(wgs_to_lambert2008(p));
            assert!(back.close_to(&p, 1e-8), "{p} -> {back}");
        }
    }

    #[test]
    fn vn2000_roundtrip_and_scale() {
        let hanoi = Point::new(105.8542, 21.0285);
        let p = wgs_to_vn2000(hanoi);
        let back = vn2000_to_wgs(p);
        assert!(back.close_to(&hanoi, 1e-9));
        // One degree of longitude at Hanoi ≈ 104 km easting.
        let p2 = wgs_to_vn2000(Point::new(106.8542, 21.0285));
        let dx = p2.x - p.x;
        assert!((dx - 104_000.0).abs() < 2_000.0, "dx = {dx}");
    }

    #[test]
    fn transform_geometry_end_to_end() {
        let g = parse_wkt("SRID=4326;Point(2.340088 49.400250)").unwrap();
        let t = transform(&g, 3812).unwrap();
        assert_eq!(t.srid, 3812);
        let p = t.as_point().unwrap();
        assert!((p.x - 502_773.43).abs() < 1.0);
        // Unsupported SRID errors out.
        assert!(transform(&g, 99999).is_err());
        // Same SRID is the identity.
        let same = transform(&g, 4326).unwrap();
        assert_eq!(same, g);
    }

    #[test]
    fn support_matrix() {
        assert!(is_supported(4326, 3857));
        assert!(is_supported(3857, 3812));
        assert!(is_supported(3405, 3405));
        assert!(!is_supported(4326, 12345));
    }
}
