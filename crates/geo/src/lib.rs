//! # mduck-geo — 2-D geometry substrate
//!
//! A from-scratch geometry kernel playing the role that GEOS/PostGIS's
//! `GSERIALIZED` machinery plays underneath MEOS in the MobilityDuck paper.
//! It provides:
//!
//! * [`Point`] and the [`Geometry`] enum (point, multipoint, linestring,
//!   multilinestring, polygon, geometry collection),
//! * WKT / EWKT parsing and printing ([`wkt`]),
//! * WKB and EWKB binary encoding ([`wkb`]) — the `WKB_BLOB` interchange
//!   format the paper's Spatial-extension proxy layer uses,
//! * a compact native binary encoding ([`gserialized`]) standing in for
//!   PostGIS `GSERIALIZED` (the `_gs` fast path of §6.3, Query 5),
//! * metric and topological predicates ([`algorithms`]): distance,
//!   intersection tests, point-in-polygon, clipping,
//! * planar SRID transforms ([`transform`]).
//!
//! Everything is 2-D; the paper's evaluation never exercises Z.

pub mod algorithms;
pub mod error;
pub mod geometry;
pub mod gserialized;
pub mod point;
pub mod transform;
pub mod wkb;
pub mod wkt;

pub use error::{GeoError, GeoResult};
pub use geometry::{Geometry, GeometryKind};
pub use point::Point;

/// The SRID used when none was specified (matches PostGIS convention).
pub const SRID_UNKNOWN: i32 = 0;
/// WGS-84 geographic coordinates.
pub const SRID_WGS84: i32 = 4326;
/// Spherical web Mercator.
pub const SRID_WEB_MERCATOR: i32 = 3857;
/// Belgian Lambert 2008 (used by the paper's §3.5 transform example).
pub const SRID_LAMBERT_2008: i32 = 3812;
/// VN-2000 / Vietnam TM-3 zone (Hanoi) — used by BerlinMOD-Hanoi.
pub const SRID_VN2000: i32 = 3405;
