//! Metric and topological algorithms: distance, intersection tests,
//! point-in-polygon, and segment/polygon clipping (the kernel behind
//! `atGeometry`, `ST_Intersects`, `ST_Distance`, `eDwithin`).

use crate::geometry::{GeomData, Geometry};
use crate::point::Point;

/// Distance from point `p` to segment `a`–`b`.
pub fn point_segment_distance(p: Point, a: Point, b: Point) -> f64 {
    let ab = b - a;
    let len_sq = ab.dot(ab);
    if len_sq == 0.0 {
        return p.distance(&a);
    }
    let t = ((p - a).dot(ab) / len_sq).clamp(0.0, 1.0);
    p.distance(&a.lerp(&b, t))
}

/// Squared orientation-robust segment intersection test (closed segments).
pub fn segments_intersect(p1: Point, p2: Point, q1: Point, q2: Point) -> bool {
    fn orient(a: Point, b: Point, c: Point) -> f64 {
        (b - a).cross(c - a)
    }
    fn on_segment(a: Point, b: Point, c: Point) -> bool {
        c.x >= a.x.min(b.x) && c.x <= a.x.max(b.x) && c.y >= a.y.min(b.y) && c.y <= a.y.max(b.y)
    }
    let d1 = orient(q1, q2, p1);
    let d2 = orient(q1, q2, p2);
    let d3 = orient(p1, p2, q1);
    let d4 = orient(p1, p2, q2);
    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true;
    }
    (d1 == 0.0 && on_segment(q1, q2, p1))
        || (d2 == 0.0 && on_segment(q1, q2, p2))
        || (d3 == 0.0 && on_segment(p1, p2, q1))
        || (d4 == 0.0 && on_segment(p1, p2, q2))
}

/// Minimum distance between two closed segments.
pub fn segment_segment_distance(p1: Point, p2: Point, q1: Point, q2: Point) -> f64 {
    if segments_intersect(p1, p2, q1, q2) {
        return 0.0;
    }
    point_segment_distance(p1, q1, q2)
        .min(point_segment_distance(p2, q1, q2))
        .min(point_segment_distance(q1, p1, p2))
        .min(point_segment_distance(q2, p1, p2))
}

/// Even-odd point-in-polygon over all rings (holes handled by parity).
/// Points exactly on an edge count as inside.
pub fn point_in_rings(p: Point, rings: &[Vec<Point>]) -> bool {
    let mut inside = false;
    for ring in rings {
        for w in ring.windows(2) {
            let (a, b) = (w[0], w[1]);
            // Boundary counts as inside.
            if point_segment_distance(p, a, b) == 0.0 {
                return true;
            }
            if (a.y > p.y) != (b.y > p.y) {
                let x_cross = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
                if p.x < x_cross {
                    inside = !inside;
                }
            }
        }
    }
    inside
}

/// True when point `p` lies inside/on geometry `g` (polygon interior counts;
/// lines and points require exact incidence).
pub fn geometry_covers_point(g: &Geometry, p: Point) -> bool {
    match &g.data {
        GeomData::Point(q) => *q == p,
        GeomData::MultiPoint(qs) => qs.contains(&p),
        GeomData::LineString(ps) => {
            ps.windows(2).any(|w| point_segment_distance(p, w[0], w[1]) == 0.0)
        }
        GeomData::MultiLineString(lines) => lines
            .iter()
            .any(|ps| ps.windows(2).any(|w| point_segment_distance(p, w[0], w[1]) == 0.0)),
        GeomData::Polygon(rings) => point_in_rings(p, rings),
        GeomData::GeometryCollection(gs) => gs.iter().any(|g| geometry_covers_point(g, p)),
    }
}

/// Minimum Euclidean distance between two geometries (`ST_Distance`).
pub fn distance(a: &Geometry, b: &Geometry) -> f64 {
    // Fast path: bounding-box lower bound can't help without an index, so we
    // enumerate features. Points and segments cover every supported kind.
    let mut best = f64::INFINITY;

    // Point-vs-b for all points of a, and segment-vs-segment for all pairs.
    let mut a_pts: Vec<Point> = Vec::new();
    a.for_each_point(&mut |p| a_pts.push(p));
    let mut b_pts: Vec<Point> = Vec::new();
    b.for_each_point(&mut |p| b_pts.push(p));
    let mut a_segs: Vec<(Point, Point)> = Vec::new();
    a.for_each_segment(&mut |p, q| a_segs.push((p, q)));
    let mut b_segs: Vec<(Point, Point)> = Vec::new();
    b.for_each_segment(&mut |p, q| b_segs.push((p, q)));

    // Containment: a point of one inside a polygon of the other → 0.
    for g in a.flatten() {
        if matches!(g.data, GeomData::Polygon(_))
            && b_pts.iter().any(|p| geometry_covers_point(g, *p))
        {
            return 0.0;
        }
    }
    for g in b.flatten() {
        if matches!(g.data, GeomData::Polygon(_))
            && a_pts.iter().any(|p| geometry_covers_point(g, *p))
        {
            return 0.0;
        }
    }

    if a_segs.is_empty() && b_segs.is_empty() {
        for p in &a_pts {
            for q in &b_pts {
                best = best.min(p.distance(q));
            }
        }
        return if best.is_finite() { best } else { f64::NAN };
    }
    if a_segs.is_empty() {
        for p in &a_pts {
            for (q1, q2) in &b_segs {
                best = best.min(point_segment_distance(*p, *q1, *q2));
            }
            // b may also contain bare points.
            for q in &b_pts {
                best = best.min(p.distance(q));
            }
        }
        return best;
    }
    if b_segs.is_empty() {
        return distance(b, a);
    }
    for (p1, p2) in &a_segs {
        for (q1, q2) in &b_segs {
            best = best.min(segment_segment_distance(*p1, *p2, *q1, *q2));
            if best == 0.0 {
                return 0.0;
            }
        }
    }
    // Isolated points on either side (multipoints inside collections).
    for p in &a_pts {
        for (q1, q2) in &b_segs {
            best = best.min(point_segment_distance(*p, *q1, *q2));
        }
    }
    for q in &b_pts {
        for (p1, p2) in &a_segs {
            best = best.min(point_segment_distance(*q, *p1, *p2));
        }
    }
    best
}

/// Topological intersection test (`ST_Intersects`).
pub fn intersects(a: &Geometry, b: &Geometry) -> bool {
    match (a.bounding_rect(), b.bounding_rect()) {
        (Some(ra), Some(rb)) => {
            if !ra.intersects(&rb) {
                return false;
            }
        }
        _ => return false, // an empty geometry intersects nothing
    }
    distance(a, b) == 0.0
}

/// Parameter intervals of segment `a`→`b` (as fractions of [0,1]) that lie
/// inside polygon `rings`. This is the clipping kernel behind `atGeometry`:
/// a temporal segment restricted to a district polygon.
///
/// Robustness strategy: collect the parameters where the segment crosses any
/// ring edge, sort them, then classify each sub-interval by testing its
/// midpoint with even-odd point-in-polygon.
pub fn clip_segment_to_rings(a: Point, b: Point, rings: &[Vec<Point>]) -> Vec<(f64, f64)> {
    let mut cuts = vec![0.0, 1.0];
    let d = b - a;
    for ring in rings {
        for w in ring.windows(2) {
            let (q1, q2) = (w[0], w[1]);
            let e = q2 - q1;
            let denom = d.cross(e);
            if denom != 0.0 {
                let t = (q1 - a).cross(e) / denom;
                let u = (q1 - a).cross(d) / denom;
                if (0.0..=1.0).contains(&t) && (0.0..=1.0).contains(&u) {
                    cuts.push(t);
                }
            } else {
                // Parallel: project endpoints when collinear.
                if (q1 - a).cross(d) == 0.0 {
                    let len_sq = d.dot(d);
                    if len_sq > 0.0 {
                        for q in [q1, q2] {
                            let t = (q - a).dot(d) / len_sq;
                            if (0.0..=1.0).contains(&t) {
                                cuts.push(t);
                            }
                        }
                    }
                }
            }
        }
    }
    // total_cmp: intersection parameters computed from degenerate
    // (infinite-coordinate) input can be NaN; sorting must not panic.
    cuts.sort_by(|x, y| x.total_cmp(y));
    cuts.dedup_by(|x, y| (*x - *y).abs() < 1e-12);
    let mut out: Vec<(f64, f64)> = Vec::new();
    for w in cuts.windows(2) {
        let (t0, t1) = (w[0], w[1]);
        let mid = a.lerp(&b, (t0 + t1) * 0.5);
        if point_in_rings(mid, rings) {
            match out.last_mut() {
                Some(last) if (last.1 - t0).abs() < 1e-12 => last.1 = t1,
                _ => out.push((t0, t1)),
            }
        }
    }
    out
}

/// Collect several geometries into one (`ST_Collect`): points fuse into a
/// multipoint, linestrings into a multilinestring, anything else into a
/// geometry collection. The SRID of the first non-zero-SRID member wins.
pub fn collect(geoms: Vec<Geometry>) -> Geometry {
    let srid = geoms.iter().map(|g| g.srid).find(|s| *s != 0).unwrap_or(0);
    let all_points = geoms.iter().all(|g| matches!(g.data, GeomData::Point(_)));
    if all_points && !geoms.is_empty() {
        let pts = geoms.iter().filter_map(Geometry::as_point).collect();
        return Geometry::multipoint(pts).with_srid(srid);
    }
    let all_lines = geoms.iter().all(|g| matches!(g.data, GeomData::LineString(_)));
    if all_lines && !geoms.is_empty() {
        let lines = geoms
            .into_iter()
            .map(|g| match g.data {
                GeomData::LineString(ps) => ps,
                _ => unreachable!(),
            })
            .collect();
        return Geometry::multilinestring(lines).with_srid(srid);
    }
    Geometry::collection(geoms).with_srid(srid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wkt::parse_wkt;

    fn g(s: &str) -> Geometry {
        parse_wkt(s).unwrap()
    }

    #[test]
    fn point_segment() {
        let d = point_segment_distance(Point::new(0.0, 1.0), Point::new(-1.0, 0.0), Point::new(1.0, 0.0));
        assert_eq!(d, 1.0);
        // Beyond the end: distance to endpoint.
        let d = point_segment_distance(Point::new(5.0, 0.0), Point::new(-1.0, 0.0), Point::new(1.0, 0.0));
        assert_eq!(d, 4.0);
        // Degenerate segment.
        let d = point_segment_distance(Point::new(3.0, 4.0), Point::ORIGIN, Point::ORIGIN);
        assert_eq!(d, 5.0);
    }

    #[test]
    fn segment_intersection_cases() {
        let o = Point::new(0.0, 0.0);
        assert!(segments_intersect(o, Point::new(2.0, 2.0), Point::new(0.0, 2.0), Point::new(2.0, 0.0)));
        assert!(!segments_intersect(o, Point::new(1.0, 0.0), Point::new(0.0, 1.0), Point::new(1.0, 1.0)));
        // Touching at an endpoint counts.
        assert!(segments_intersect(o, Point::new(1.0, 1.0), Point::new(1.0, 1.0), Point::new(2.0, 0.0)));
        // Collinear overlap counts.
        assert!(segments_intersect(o, Point::new(2.0, 0.0), Point::new(1.0, 0.0), Point::new(3.0, 0.0)));
        // Collinear disjoint does not.
        assert!(!segments_intersect(o, Point::new(1.0, 0.0), Point::new(2.0, 0.0), Point::new(3.0, 0.0)));
    }

    #[test]
    fn point_in_polygon_with_hole() {
        let rings = match g("POLYGON((0 0,10 0,10 10,0 10,0 0),(4 4,6 4,6 6,4 6,4 4))").data {
            GeomData::Polygon(r) => r,
            _ => unreachable!(),
        };
        assert!(point_in_rings(Point::new(1.0, 1.0), &rings));
        assert!(!point_in_rings(Point::new(5.0, 5.0), &rings)); // in the hole
        assert!(!point_in_rings(Point::new(11.0, 5.0), &rings));
        assert!(point_in_rings(Point::new(0.0, 5.0), &rings)); // boundary
    }

    #[test]
    fn distance_pairs() {
        assert_eq!(distance(&g("POINT(0 0)"), &g("POINT(3 4)")), 5.0);
        assert_eq!(distance(&g("POINT(0 1)"), &g("LINESTRING(-1 0,1 0)")), 1.0);
        assert_eq!(distance(&g("LINESTRING(0 0,2 2)"), &g("LINESTRING(0 2,2 0)")), 0.0);
        let d = distance(&g("LINESTRING(0 0,1 0)"), &g("LINESTRING(0 2,1 2)"));
        assert_eq!(d, 2.0);
        // Point inside polygon → 0.
        assert_eq!(distance(&g("POINT(5 5)"), &g("POLYGON((0 0,10 0,10 10,0 10,0 0))")), 0.0);
        // Point outside polygon → distance to boundary.
        assert_eq!(distance(&g("POINT(15 5)"), &g("POLYGON((0 0,10 0,10 10,0 10,0 0))")), 5.0);
    }

    #[test]
    fn intersects_uses_boxes_then_exact() {
        assert!(intersects(&g("LINESTRING(0 0,2 2)"), &g("LINESTRING(0 2,2 0)")));
        assert!(!intersects(&g("POINT(0 0)"), &g("POINT(1 0)")));
        assert!(intersects(&g("POINT(5 5)"), &g("POLYGON((0 0,10 0,10 10,0 10,0 0))")));
        assert!(!intersects(&g("GEOMETRYCOLLECTION EMPTY"), &g("POINT(0 0)")));
    }

    #[test]
    fn clip_segment_through_square() {
        let rings = match g("POLYGON((0 0,10 0,10 10,0 10,0 0))").data {
            GeomData::Polygon(r) => r,
            _ => unreachable!(),
        };
        // Segment crossing straight through.
        let iv = clip_segment_to_rings(Point::new(-5.0, 5.0), Point::new(15.0, 5.0), &rings);
        assert_eq!(iv.len(), 1);
        assert!((iv[0].0 - 0.25).abs() < 1e-9 && (iv[0].1 - 0.75).abs() < 1e-9);
        // Entirely inside.
        let iv = clip_segment_to_rings(Point::new(1.0, 1.0), Point::new(2.0, 2.0), &rings);
        assert_eq!(iv, vec![(0.0, 1.0)]);
        // Entirely outside.
        let iv = clip_segment_to_rings(Point::new(20.0, 20.0), Point::new(30.0, 30.0), &rings);
        assert!(iv.is_empty());
    }

    #[test]
    fn clip_segment_with_hole() {
        let rings = match g("POLYGON((0 0,10 0,10 10,0 10,0 0),(4 4,6 4,6 6,4 6,4 4))").data {
            GeomData::Polygon(r) => r,
            _ => unreachable!(),
        };
        // Crosses the hole: two inside intervals.
        let iv = clip_segment_to_rings(Point::new(0.0, 5.0), Point::new(10.0, 5.0), &rings);
        assert_eq!(iv.len(), 2);
        assert!((iv[0].1 - 0.4).abs() < 1e-9);
        assert!((iv[1].0 - 0.6).abs() < 1e-9);
    }

    #[test]
    fn collect_fuses_kinds() {
        let m = collect(vec![g("SRID=4326;POINT(1 1)"), g("POINT(2 2)")]);
        assert!(matches!(m.data, GeomData::MultiPoint(_)));
        assert_eq!(m.srid, 4326);
        let ml = collect(vec![g("LINESTRING(0 0,1 1)"), g("LINESTRING(2 2,3 3)")]);
        assert!(matches!(ml.data, GeomData::MultiLineString(_)));
        let c = collect(vec![g("POINT(1 1)"), g("LINESTRING(0 0,1 1)")]);
        assert!(matches!(c.data, GeomData::GeometryCollection(_)));
    }
}
