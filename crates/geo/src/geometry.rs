//! The [`Geometry`] enum: the subset of simple features the paper exercises.

use crate::error::{GeoError, GeoResult};
use crate::point::{Point, Rect};
use crate::SRID_UNKNOWN;

/// Discriminant for [`Geometry`], mirroring the OGC simple-feature kinds we
/// support (all 2-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GeometryKind {
    Point,
    LineString,
    Polygon,
    MultiPoint,
    MultiLineString,
    GeometryCollection,
}

impl GeometryKind {
    /// OGC WKB type code.
    pub fn wkb_code(self) -> u32 {
        match self {
            GeometryKind::Point => 1,
            GeometryKind::LineString => 2,
            GeometryKind::Polygon => 3,
            GeometryKind::MultiPoint => 4,
            GeometryKind::MultiLineString => 5,
            GeometryKind::GeometryCollection => 7,
        }
    }

    /// Upper-case WKT tag.
    pub fn wkt_tag(self) -> &'static str {
        match self {
            GeometryKind::Point => "POINT",
            GeometryKind::LineString => "LINESTRING",
            GeometryKind::Polygon => "POLYGON",
            GeometryKind::MultiPoint => "MULTIPOINT",
            GeometryKind::MultiLineString => "MULTILINESTRING",
            GeometryKind::GeometryCollection => "GEOMETRYCOLLECTION",
        }
    }
}

/// A 2-D simple-feature geometry with an SRID.
///
/// Polygons store an exterior ring plus interior rings; rings are stored
/// closed (first point repeated last) exactly as parsed.
#[derive(Debug, Clone, PartialEq)]
pub struct Geometry {
    pub srid: i32,
    pub data: GeomData,
}

/// The coordinate payload of a [`Geometry`].
#[derive(Debug, Clone, PartialEq)]
pub enum GeomData {
    Point(Point),
    LineString(Vec<Point>),
    Polygon(Vec<Vec<Point>>),
    MultiPoint(Vec<Point>),
    MultiLineString(Vec<Vec<Point>>),
    GeometryCollection(Vec<Geometry>),
}

impl Geometry {
    /// A single point geometry with SRID 0.
    pub fn point(x: f64, y: f64) -> Self {
        Geometry { srid: SRID_UNKNOWN, data: GeomData::Point(Point::new(x, y)) }
    }

    /// A point geometry from a [`Point`].
    pub fn from_point(p: Point) -> Self {
        Geometry { srid: SRID_UNKNOWN, data: GeomData::Point(p) }
    }

    /// A linestring; requires at least 2 points.
    pub fn linestring(points: Vec<Point>) -> GeoResult<Self> {
        if points.len() < 2 {
            return Err(GeoError::InvalidGeometry(
                "linestring needs at least 2 points".into(),
            ));
        }
        Ok(Geometry { srid: SRID_UNKNOWN, data: GeomData::LineString(points) })
    }

    /// A polygon from rings. Each ring is closed if not already.
    pub fn polygon(mut rings: Vec<Vec<Point>>) -> GeoResult<Self> {
        if rings.is_empty() {
            return Err(GeoError::InvalidGeometry("polygon needs a ring".into()));
        }
        for ring in &mut rings {
            if ring.len() < 3 {
                return Err(GeoError::InvalidGeometry(
                    "polygon ring needs at least 3 points".into(),
                ));
            }
            if ring.first() != ring.last() {
                let first = ring[0];
                ring.push(first);
            }
        }
        Ok(Geometry { srid: SRID_UNKNOWN, data: GeomData::Polygon(rings) })
    }

    /// A multipoint.
    pub fn multipoint(points: Vec<Point>) -> Self {
        Geometry { srid: SRID_UNKNOWN, data: GeomData::MultiPoint(points) }
    }

    /// A multilinestring.
    pub fn multilinestring(lines: Vec<Vec<Point>>) -> Self {
        Geometry { srid: SRID_UNKNOWN, data: GeomData::MultiLineString(lines) }
    }

    /// A geometry collection. Children keep their own payloads; the
    /// collection's SRID wins when serializing.
    pub fn collection(geoms: Vec<Geometry>) -> Self {
        Geometry { srid: SRID_UNKNOWN, data: GeomData::GeometryCollection(geoms) }
    }

    /// Builder-style SRID assignment.
    pub fn with_srid(mut self, srid: i32) -> Self {
        self.srid = srid;
        self
    }

    /// The kind discriminant.
    pub fn kind(&self) -> GeometryKind {
        match &self.data {
            GeomData::Point(_) => GeometryKind::Point,
            GeomData::LineString(_) => GeometryKind::LineString,
            GeomData::Polygon(_) => GeometryKind::Polygon,
            GeomData::MultiPoint(_) => GeometryKind::MultiPoint,
            GeomData::MultiLineString(_) => GeometryKind::MultiLineString,
            GeomData::GeometryCollection(_) => GeometryKind::GeometryCollection,
        }
    }

    /// If this is a point geometry, its coordinate.
    pub fn as_point(&self) -> Option<Point> {
        match &self.data {
            GeomData::Point(p) => Some(*p),
            _ => None,
        }
    }

    /// Total number of coordinates (vertices) in the geometry.
    pub fn num_points(&self) -> usize {
        match &self.data {
            GeomData::Point(_) => 1,
            GeomData::LineString(ps) | GeomData::MultiPoint(ps) => ps.len(),
            GeomData::Polygon(rings) | GeomData::MultiLineString(rings) => {
                rings.iter().map(Vec::len).sum()
            }
            GeomData::GeometryCollection(gs) => gs.iter().map(Geometry::num_points).sum(),
        }
    }

    /// True when the geometry contains no coordinates.
    pub fn is_empty(&self) -> bool {
        self.num_points() == 0
    }

    /// Axis-aligned bounding box; `None` for empty geometries.
    pub fn bounding_rect(&self) -> Option<Rect> {
        fn fold(rect: Option<Rect>, p: Point) -> Option<Rect> {
            Some(match rect {
                None => Rect::from_point(p),
                Some(mut r) => {
                    r.expand_to(p);
                    r
                }
            })
        }
        let mut rect = None;
        self.for_each_point(&mut |p| rect = fold(rect, p));
        rect
    }

    /// Visit every coordinate in the geometry.
    pub fn for_each_point(&self, f: &mut impl FnMut(Point)) {
        match &self.data {
            GeomData::Point(p) => f(*p),
            GeomData::LineString(ps) | GeomData::MultiPoint(ps) => {
                ps.iter().copied().for_each(f)
            }
            GeomData::Polygon(rings) | GeomData::MultiLineString(rings) => {
                for r in rings {
                    r.iter().copied().for_each(&mut *f);
                }
            }
            GeomData::GeometryCollection(gs) => {
                for g in gs {
                    g.for_each_point(f);
                }
            }
        }
    }

    /// Every line segment in the geometry (linestrings, polygon rings).
    pub fn for_each_segment(&self, f: &mut impl FnMut(Point, Point)) {
        match &self.data {
            GeomData::Point(_) | GeomData::MultiPoint(_) => {}
            GeomData::LineString(ps) => {
                for w in ps.windows(2) {
                    f(w[0], w[1]);
                }
            }
            GeomData::Polygon(rings) | GeomData::MultiLineString(rings) => {
                for r in rings {
                    for w in r.windows(2) {
                        f(w[0], w[1]);
                    }
                }
            }
            GeomData::GeometryCollection(gs) => {
                for g in gs {
                    g.for_each_segment(f);
                }
            }
        }
    }

    /// Sum of segment lengths (0 for point kinds, perimeter for polygons).
    pub fn length(&self) -> f64 {
        let mut total = 0.0;
        self.for_each_segment(&mut |a, b| total += a.distance(&b));
        total
    }

    /// Map every coordinate through `f`, preserving structure and SRID.
    pub fn map_points(&self, f: &impl Fn(Point) -> Point) -> Geometry {
        let data = match &self.data {
            GeomData::Point(p) => GeomData::Point(f(*p)),
            GeomData::LineString(ps) => GeomData::LineString(ps.iter().map(|p| f(*p)).collect()),
            GeomData::MultiPoint(ps) => GeomData::MultiPoint(ps.iter().map(|p| f(*p)).collect()),
            GeomData::Polygon(rings) => GeomData::Polygon(
                rings.iter().map(|r| r.iter().map(|p| f(*p)).collect()).collect(),
            ),
            GeomData::MultiLineString(rings) => GeomData::MultiLineString(
                rings.iter().map(|r| r.iter().map(|p| f(*p)).collect()).collect(),
            ),
            GeomData::GeometryCollection(gs) => {
                GeomData::GeometryCollection(gs.iter().map(|g| g.map_points(f)).collect())
            }
        };
        Geometry { srid: self.srid, data }
    }

    /// Flatten into primitive (non-collection) geometries.
    pub fn flatten(&self) -> Vec<&Geometry> {
        match &self.data {
            GeomData::GeometryCollection(gs) => gs.iter().flat_map(|g| g.flatten()).collect(),
            _ => vec![self],
        }
    }

    /// Error helper asserting matching SRIDs (SRID 0 matches anything).
    pub fn check_srid(&self, other: &Geometry) -> GeoResult<()> {
        if self.srid != SRID_UNKNOWN && other.srid != SRID_UNKNOWN && self.srid != other.srid {
            Err(GeoError::SridMismatch { left: self.srid, right: other.srid })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polygon_closes_open_rings() {
        let g = Geometry::polygon(vec![vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
        ]])
        .unwrap();
        match &g.data {
            GeomData::Polygon(rings) => {
                assert_eq!(rings[0].len(), 4);
                assert_eq!(rings[0][0], rings[0][3]);
            }
            _ => panic!("not a polygon"),
        }
    }

    #[test]
    fn linestring_rejects_single_point() {
        assert!(Geometry::linestring(vec![Point::new(0.0, 0.0)]).is_err());
    }

    #[test]
    fn bounding_rect_and_length() {
        let g = Geometry::linestring(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 4.0),
            Point::new(3.0, 8.0),
        ])
        .unwrap();
        assert_eq!(g.bounding_rect().unwrap(), Rect::new(0.0, 0.0, 3.0, 8.0));
        assert_eq!(g.length(), 9.0);
        assert_eq!(g.num_points(), 3);
    }

    #[test]
    fn collection_flatten_and_points() {
        let c = Geometry::collection(vec![
            Geometry::point(1.0, 1.0),
            Geometry::multipoint(vec![Point::new(2.0, 2.0), Point::new(3.0, 3.0)]),
        ]);
        assert_eq!(c.num_points(), 3);
        assert_eq!(c.flatten().len(), 2);
        assert!(!c.is_empty());
        assert!(Geometry::collection(vec![]).is_empty());
    }

    #[test]
    fn srid_check() {
        let a = Geometry::point(0.0, 0.0).with_srid(4326);
        let b = Geometry::point(0.0, 0.0).with_srid(3857);
        let c = Geometry::point(0.0, 0.0);
        assert!(a.check_srid(&b).is_err());
        assert!(a.check_srid(&c).is_ok());
        assert!(a.check_srid(&a).is_ok());
    }

    #[test]
    fn map_points_preserves_srid() {
        let g = Geometry::point(1.0, 2.0).with_srid(4326);
        let m = g.map_points(&|p| Point::new(p.x * 2.0, p.y * 2.0));
        assert_eq!(m.srid, 4326);
        assert_eq!(m.as_point().unwrap(), Point::new(2.0, 4.0));
    }
}
