#!/usr/bin/env bash
# Metric-name lint: every metric registered in the global registry must
# be snake_case and unique. Dashboards and the `PRAGMA metrics` output
# key on these names, so a typo or a duplicate silently splits a series.
#
# The registry is declared between the `lint-metrics-begin` /
# `lint-metrics-end` markers in crates/obs/src/metrics.rs; this script
# extracts the field names from that block.

set -euo pipefail
cd "$(dirname "$0")/.."

src=crates/obs/src/metrics.rs

# Metric names are the bare `identifier,` lines inside the macro block
# (group headers like `counters {` don't end with a comma).
names=$(sed -n '/lint-metrics-begin/,/lint-metrics-end/p' "$src" \
  | grep -oE '^[[:space:]]*[A-Za-z0-9_]+,[[:space:]]*$' \
  | tr -d ' ,' || true)

if [ -z "$names" ]; then
  echo "lint_metrics: no metric names found between markers in $src" >&2
  exit 1
fi

status=0

bad=$(echo "$names" | grep -vE '^[a-z][a-z0-9_]*$' || true)
if [ -n "$bad" ]; then
  echo "lint_metrics: metric names must be snake_case ([a-z][a-z0-9_]*):" >&2
  echo "$bad" | sed 's/^/  /' >&2
  status=1
fi

dupes=$(echo "$names" | sort | uniq -d)
if [ -n "$dupes" ]; then
  echo "lint_metrics: duplicate metric names:" >&2
  echo "$dupes" | sed 's/^/  /' >&2
  status=1
fi

count=$(echo "$names" | wc -l)
if [ "$status" -eq 0 ]; then
  echo "lint_metrics: $count metric names OK"
fi
exit "$status"
