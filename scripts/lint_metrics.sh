#!/usr/bin/env bash
# Metric-name lint: every metric registered in the global registry must
# be snake_case and unique. Dashboards and the `PRAGMA metrics` output
# key on these names, so a typo or a duplicate silently splits a series.
#
# The registry is declared between the `lint-metrics-begin` /
# `lint-metrics-end` markers in crates/obs/src/metrics.rs; this script
# extracts the field names from that block.

set -euo pipefail
cd "$(dirname "$0")/.."

src=crates/obs/src/metrics.rs

# Metric names are the bare `identifier,` lines inside the macro block
# (group headers like `counters {` don't end with a comma).
names=$(sed -n '/lint-metrics-begin/,/lint-metrics-end/p' "$src" \
  | grep -oE '^[[:space:]]*[A-Za-z0-9_]+,[[:space:]]*$' \
  | tr -d ' ,' || true)

if [ -z "$names" ]; then
  echo "lint_metrics: no metric names found between markers in $src" >&2
  exit 1
fi

status=0

bad=$(echo "$names" | grep -vE '^[a-z][a-z0-9_]*$' || true)
if [ -n "$bad" ]; then
  echo "lint_metrics: metric names must be snake_case ([a-z][a-z0-9_]*):" >&2
  echo "$bad" | sed 's/^/  /' >&2
  status=1
fi

dupes=$(echo "$names" | sort | uniq -d)
if [ -n "$dupes" ]; then
  echo "lint_metrics: duplicate metric names:" >&2
  echo "$dupes" | sed 's/^/  /' >&2
  status=1
fi

count=$(echo "$names" | wc -l)

# ---------------------------------------------------------------- query log
# The query-log JSONL sink and the `mduck_query_log()` table function are
# a persisted contract: every field `json_line` emits must be snake_case,
# unique, and present as a column of the table function (the table adds
# `query_id`/`duration_ms` in place of the raw `id`/`duration_us`).

qlog=crates/obs/src/querylog.rs
schema=crates/sql/src/introspect.rs

# Nullable fields emit the same name from both match arms, so collapse
# repeats; ordering is irrelevant to the JSON contract.
jfields=$(sed -n '/fn json_line/,/^}/p' "$qlog" \
  | grep -oE 'push(_str)?_field\(&mut out, "[a-z0-9_]+"' \
  | grep -oE '"[a-z0-9_]+"' | tr -d '"' | sort -u)

if [ -z "$jfields" ]; then
  echo "lint_metrics: no JSONL fields found in $qlog json_line" >&2
  status=1
fi

cols=$(sed -n '/fn query_log_fields/,/^}/p' "$schema" \
  | grep -oE 'f\("[a-z0-9_]+"' | grep -oE '"[a-z0-9_]+"' | tr -d '"')

for fld in $jfields; do
  case "$fld" in
    id) want=query_id ;;
    duration_us) want=duration_ms ;;
    *) want=$fld ;;
  esac
  if ! echo "$cols" | grep -qx "$want"; then
    echo "lint_metrics: JSONL field '$fld' has no mduck_query_log() column '$want'" >&2
    status=1
  fi
done

jcount=$(echo "$jfields" | wc -l)
if [ "$status" -eq 0 ]; then
  echo "lint_metrics: $count metric names, $jcount query-log fields OK"
fi
exit "$status"
