#!/usr/bin/env bash
# Panic-lint gate: fail if library source (crates/*/src) gains new
# panicking constructs reachable from user input.
#
# What counts: .unwrap() / .expect(...) / panic!(...) / unreachable!(...) /
# todo!(...) / unimplemented!(...) outside in-file `#[cfg(test)]` modules.
#
# What doesn't:
#   - test code (anything after the first `#[cfg(test)]` in a file; by
#     convention test modules sit at the bottom),
#   - `crates/bench` (benchmark driver binaries — aborting on a broken
#     setup is the right behaviour there),
#   - sites vetted in scripts/panic_allowlist.txt.
#
# The allowlist keys each vetted site as "<file>:<normalized code>", so
# entries survive unrelated line-number drift but a *new* unwrap — even
# in an already-listed file — fails the gate. Every entry is an audited
# invariant (e.g. a slice whose bounds were checked on the previous
# line, or "non-empty by construction"); see the comments in the file.
#
# Usage:
#   scripts/lint_panics.sh                    # gate (CI / verify path)
#   scripts/lint_panics.sh --update-allowlist # re-vet after an audit

set -euo pipefail
cd "$(dirname "$0")/.."

ALLOWLIST="scripts/panic_allowlist.txt"

# Emit "file:normalized-code" for every panic site in non-test library
# source, sorted (duplicates preserved so the multiset comparison below
# catches a second copy of an already-allowed line).
scan() {
  local f
  for f in $(find crates -path '*/src/*.rs' ! -path 'crates/bench/*' | sort); do
    awk -v file="$f" '
      # Skip `#[cfg(test)] mod ... { ... }` blocks by brace depth; code
      # after the test module (unusual but legal) is still scanned.
      pending && /\{/ { skipping = 1; pending = 0 }
      skipping {
        n = gsub(/\{/, "{"); m = gsub(/\}/, "}")
        depth += n - m
        if (depth <= 0) { skipping = 0; depth = 0 }
        next
      }
      /#\[cfg\(test\)\]/ { pending = 1; depth = 0; next }
      $0 ~ /\.unwrap\(\)|\.expect\(|panic!\(|unreachable!\(|todo!\(|unimplemented!\(/ {
        line = $0
        gsub(/^[ \t]+|[ \t]+$/, "", line)
        if (line ~ /^\/\//) next
        printf "%s:%s\n", file, line
      }
    ' "$f"
  done | sort
}

# The durability crate gets a stricter rule with NO allowlist escape:
# every file/sync/rename result feeds crash recovery, so an unchecked
# `.unwrap()` / `.expect(` outside tests is always a bug there — a torn
# write must surface as a typed SqlError, never a panic mid-commit.
# (`unwrap_or_else`/`unwrap_or_default` are combinators, not panics,
# and are deliberately not matched.)
wal_gate() {
  local f hits=""
  for f in $(find crates/wal/src -name '*.rs' | sort); do
    local found
    found=$(awk -v file="$f" '
      pending && /\{/ { skipping = 1; pending = 0 }
      skipping {
        n = gsub(/\{/, "{"); m = gsub(/\}/, "}")
        depth += n - m
        if (depth <= 0) { skipping = 0; depth = 0 }
        next
      }
      /#\[cfg\(test\)\]/ { pending = 1; depth = 0; next }
      /\.unwrap\(\)|\.expect\(/ {
        line = $0
        gsub(/^[ \t]+|[ \t]+$/, "", line)
        if (line ~ /^\/\//) next
        printf "%s:%d:%s\n", file, NR, line
      }
    ' "$f")
    [[ -n "$found" ]] && hits+="$found"$'\n'
  done
  if [[ -n "${hits//$'\n'/}" ]]; then
    echo
    echo "Unchecked unwrap()/expect() in crates/wal (no allowlist applies):"
    printf '%s' "$hits"
    echo "Durability I/O must return typed SqlError, not panic."
    exit 1
  fi
}
wal_gate

CURRENT="$(mktemp)"
trap 'rm -f "$CURRENT"' EXIT
scan > "$CURRENT"

if [[ "${1:-}" == "--update-allowlist" ]]; then
  {
    echo "# Vetted panic sites in library source (see scripts/lint_panics.sh)."
    echo "# Each line is <file>:<code>. Regenerate with --update-allowlist"
    echo "# ONLY after auditing that every new entry is an unreachable"
    echo "# invariant, not a user-input-reachable panic."
    cat "$CURRENT"
  } > "$ALLOWLIST"
  echo "panic-lint: allowlist updated ($(grep -c . "$CURRENT") sites)"
  exit 0
fi

NEW="$(comm -23 "$CURRENT" <(grep -v '^#' "$ALLOWLIST" 2>/dev/null | sort) || true)"

TOTAL=$(grep -c . "$CURRENT" || true)
echo "panic-lint: $TOTAL panic sites in library source, $(printf '%s' "$NEW" | grep -c . || true) unvetted"

if [[ -n "$NEW" ]]; then
  echo
  echo "New panicking constructs in crates/*/src (outside tests):"
  echo "$NEW"
  echo
  echo "Convert them to typed errors (SqlError / TemporalError / GeoError)."
  echo "If a site is a genuinely unreachable invariant, audit it and run"
  echo "scripts/lint_panics.sh --update-allowlist."
  exit 1
fi
