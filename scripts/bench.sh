#!/usr/bin/env bash
# Reproducible benchmark baseline: Figure 12 at SF-0.001.
#
# Runs the BerlinMOD query suite on both engines and leaves three
# machine-readable reports at the repo root — `BENCH_queries.json`
# (per-query runtimes + peak memory per engine/thread-count),
# `BENCH_operators.json` (the vectorized engine's per-operator EXPLAIN
# ANALYZE breakdown, including per-operator memory), and
# `BENCH_durability.json` (WAL-on vs in-memory ingest overhead and
# recovery time). The human-readable tables land in results/.
#
#   RUNS=5 scripts/bench.sh        # more samples per query (default 3)
#   SF=0.002 scripts/bench.sh      # a different scale factor

set -euo pipefail
cd "$(dirname "$0")/.."

RUNS="${RUNS:-3}"
SF="${SF:-0.001}"

mkdir -p results

echo "== build (release) =="
cargo build --release -p mduck-bench

echo "== fig12 @ SF-${SF}, ${RUNS} runs =="
./target/release/fig12_berlinmod --sf "$SF" --runs "$RUNS" \
  | tee "results/fig12_sf${SF#0.}_baseline.txt"

echo "== durability @ SF-${SF}, ${RUNS} runs =="
# WAL-on vs in-memory ingest overhead plus cold recovery time for both
# engines; leaves BENCH_durability.json at the repo root.
./target/release/durability_ingest --sf "$SF" --runs "$RUNS" \
  | tee "results/durability_sf${SF#0.}_baseline.txt"

echo "bench: wrote BENCH_queries.json, BENCH_operators.json, BENCH_durability.json, results/fig12_sf${SF#0.}_baseline.txt, results/durability_sf${SF#0.}_baseline.txt"
