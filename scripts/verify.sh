#!/usr/bin/env bash
# Full verify path: build, tests, clippy, and the panic-lint gate.
#
# Tier-1 (ROADMAP.md) is `cargo build --release && cargo test -q`; this
# script is the superset CI should run. Clippy is pinned to the lints
# that catch the bug classes this codebase has actually shipped
# (panicking slices/arithmetic in parsers) without flagging the vetted
# remainder that scripts/panic_allowlist.txt already tracks.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== observability tests =="
# The obs crate and the cross-engine introspection surface get an
# explicit pass: these are the gates for the EXPLAIN ANALYZE golden and
# the PRAGMA metrics contract.
cargo test -q -p mduck-obs
cargo test -q -p mduck-integration --test observability --test guard_limits

echo "== parallel execution matrix =="
# Morsel-driven parallelism must be byte-identical to serial execution.
# MDUCK_THREADS overrides the auto-detected worker count, so the matrix
# exercises both the serial path (threads=1) and a real worker pool
# (threads=4) regardless of the host's core count. The differential
# suite itself also pins thread counts per-connection via set_threads.
MDUCK_THREADS=1 cargo test -q -p mduck-integration --test parallel_exec
MDUCK_THREADS=4 cargo test -q -p mduck-integration --test parallel_exec

echo "== resource observability =="
# Memory-limit trips, progress monotonicity, and the query-log contract
# must hold with a real worker pool, not just the serial path: parallel
# workers charge the same statement scope and must surface the trip.
MDUCK_THREADS=4 cargo test -q -p mduck-integration --test resource_obs

echo "== durability / crash torture =="
# Crash-simulate at every registered failpoint (the torture harness
# enumerates ≥50 distinct (site, hit) crash points per engine from a
# clean run, then replays each with a simulated process death) and
# assert the recovered state equals the committed statement prefix.
# Runs serially and with a 4-worker pool: the WAL commit path must be
# identical under parallel execution. MDUCK_FAILPOINTS itself is
# exercised in-process via the programmatic API the env var feeds.
cargo test -q -p mduck-wal
cargo test -q -p mduck-integration --test durability --test crash_torture
MDUCK_THREADS=4 cargo test -q -p mduck-integration --test durability --test crash_torture

echo "== clippy =="
# Scoped to the bug classes this codebase has actually shipped
# (panicking arithmetic/slicing in parsers); unwrap/expect policing is
# owned by scripts/lint_panics.sh, which carries the audited allowlist.
cargo clippy --workspace --all-targets -- \
  -D clippy::panicking_overflow_checks \
  -D clippy::manual_strip \
  -D clippy::out_of_bounds_indexing \
  -D clippy::unchecked_duration_subtraction

echo "== panic lint =="
scripts/lint_panics.sh

echo "== metric-name lint =="
scripts/lint_metrics.sh

echo "verify: all gates passed"
